(* Layer-4 typed-analysis suite, run against the compiled fixture corpus
   in fixtures/analysis/typed (a real dune library, so its .cmt files
   exist under the test's own build directory). Covers the cmt index,
   the typed phys-equality exemption end to end through Ast_lint, the
   allocation profiler (boxed loop vs clean loop, determinism, baseline
   round-trip) and the budget-threading verifier (clean chain, dropped
   budget, unbudgeted kernel, bad entries), plus the SARIF envelope. *)

module D = Dwv_analysis.Diagnostics
module CI = Dwv_analysis.Cmt_index
module TR = Dwv_analysis.Typed_rules
module AP = Dwv_analysis.Alloc_profile
module BT = Dwv_analysis.Budget_threading
module AL = Dwv_analysis.Ast_lint

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The fixture corpus builds inside the test directory, so from the
   test's cwd (_build/default/test) the cmts sit right here. *)
let fixture_build = "fixtures/analysis/typed"
let fixture_src = "test/fixtures/analysis/typed"

let idx = lazy (CI.scan ~build_dir:fixture_build ())

(* ---------------- index ---------------- *)

let test_index_units () =
  let idx = Lazy.force idx in
  Alcotest.(check (list string))
    "fixture units, canonical names, sorted"
    [
      "Budget"; "Expr"; "Interval"; "Pool"; "Rk45"; "Sf_cache"; "Sf_ival";
      "Tf_boxed_loop"; "Tf_budget_drop"; "Tf_budget_ok"; "Tf_clean_loop";
    ]
    (List.map (fun u -> u.CI.u_name) (CI.units idx));
  Alcotest.(check (list (pair string string))) "no load errors" []
    (CI.load_errors idx)

let test_index_budget_param () =
  let idx = Lazy.force idx in
  match CI.find_fn idx "Rk45.integrate" with
  | None -> Alcotest.fail "Rk45.integrate not indexed"
  | Some (_, fn) -> (
    match fn.CI.t_params with
    | { CI.p_label = "?budget"; p_budget = true } :: _ -> ()
    | _ -> Alcotest.fail "?budget param not recognized as Budget.t-typed")

let test_index_call_resolution () =
  let idx = Lazy.force idx in
  match CI.find_fn idx "Tf_budget_ok.verify" with
  | None -> Alcotest.fail "Tf_budget_ok.verify not indexed"
  | Some (_, fn) ->
    let callees = List.map (fun c -> c.CI.c_callee) fn.CI.t_calls in
    Alcotest.(check bool) "calls Budget.spend_steps" true
      (List.mem "Budget.spend_steps" callees);
    Alcotest.(check bool) "calls refine" true
      (List.mem "Tf_budget_ok.refine" callees)

(* ---------------- typed phys-equality exemption ---------------- *)

let test_phys_eq_allow_sites () =
  let allow = TR.expr_phys_eq_allow (Lazy.force idx) in
  (* the t == t in [equal] is exempt; the float array == two lines down
     is not *)
  Alcotest.(check (list (pair string int)))
    "exactly the Expr.t identity test"
    [ (fixture_src ^ "/expr.ml", 8) ]
    allow

let test_phys_eq_allow_filters_lint () =
  let allow =
    (* cmt paths are rooted at the project ("test/fixtures/..."); the
       lint below runs from the test directory, so strip the prefix *)
    List.map
      (fun (p, l) ->
        match String.index_opt p '/' with
        | Some i when String.sub p 0 i = "test" ->
          (String.sub p (i + 1) (String.length p - i - 1), l)
        | _ -> (p, l))
      (TR.expr_phys_eq_allow (Lazy.force idx))
  in
  let file = fixture_build ^ "/expr.ml" in
  let ds = AL.lint_files ~phys_eq_allow:allow ~engine:AL.Both [ file ] in
  let phys_lines =
    List.filter_map
      (fun d ->
        match (d.D.check, d.D.loc) with
        | "phys-equality", D.File { line; _ } -> Some line
        | _ -> None)
      ds
  in
  Alcotest.(check (list int)) "only the float-array == is flagged" [ 10 ]
    phys_lines;
  Alcotest.(check int) "no engine disagreement" 0
    (List.length (List.filter (fun d -> d.D.check = "engine-diff") ds))

(* ---------------- allocation profile ---------------- *)

let hot_entries = [ "Tf_boxed_loop.hot"; "Tf_boxed_loop.pool_hot" ]

let profile entries =
  AP.profile ~entries (Lazy.force idx)

let classes_of fn sites =
  List.filter (fun s -> s.AP.s_fn = fn) sites
  |> List.map (fun s -> s.AP.s_class)
  |> List.sort_uniq String.compare

let test_alloc_boxed_loop () =
  let sites, diags = profile hot_entries in
  Alcotest.(check int) "all entries resolved" 0 (List.length diags);
  let got = classes_of "Tf_boxed_loop.hot" sites in
  List.iter
    (fun cls ->
      Alcotest.(check bool) (cls ^ " detected") true (List.mem cls got))
    [
      "float-ref"; "boxed-float-let"; "tuple-in-loop"; "list-cons-in-loop";
      "option-alloc-in-loop"; "array-alloc-in-loop"; "closure-in-loop";
      "float-poly-compare";
    ];
  (* every in-loop site carries its nesting depth in the score *)
  List.iter
    (fun s ->
      Alcotest.(check int)
        (Fmt.str "score law at %s:%d" s.AP.s_file s.AP.s_line)
        (s.AP.s_weight * (1 + s.AP.s_depth))
        s.AP.s_score)
    sites

let test_alloc_task_state () =
  let sites, _ = profile hot_entries in
  let task =
    List.filter
      (fun s ->
        s.AP.s_fn = "Tf_boxed_loop.pool_hot"
        && s.AP.s_class = "task-mutable-state")
      sites
  in
  Alcotest.(check bool) "mutable capture inside the Pool task flagged" true
    (task <> [])

let test_alloc_clean_loop () =
  (* Pool-launching functions are auto-rooted whatever the entry list
     (so repo scans never miss a task body), hence the filter: the
     assertion is about [clean] itself. *)
  let sites, diags = profile [ "Tf_clean_loop.clean" ] in
  Alcotest.(check int) "entry resolved" 0 (List.length diags);
  Alcotest.(check int) "preallocated loop has no sites" 0
    (List.length (List.filter (fun s -> s.AP.s_fn = "Tf_clean_loop.clean") sites))

let test_alloc_unresolved_entry () =
  let _, diags = profile [ "Tf_boxed_loop.nope" ] in
  match diags with
  | [ d ] ->
    Alcotest.(check bool) "info, not error" true (d.D.severity = D.Info);
    Alcotest.(check bool) "names the entry" true
      (contains ~sub:"Tf_boxed_loop.nope" d.D.message)
  | ds -> Alcotest.fail (Fmt.str "expected 1 info, got %d" (List.length ds))

let test_alloc_determinism () =
  let s1, _ = profile hot_entries in
  let s2, _ = profile hot_entries in
  Alcotest.(check string) "report is bit-identical across runs"
    (AP.report_to_json s1) (AP.report_to_json s2)

let test_alloc_baseline_roundtrip () =
  let sites, _ = profile hot_entries in
  Alcotest.(check bool) "profile is non-empty" true (sites <> []);
  let baseline = AP.report_to_json sites in
  Alcotest.(check int) "full baseline covers the profile" 0
    (List.length (AP.diff_against_baseline ~baseline sites));
  let truncated = AP.report_to_json (List.tl (AP.sort sites)) in
  let ds = AP.diff_against_baseline ~baseline:truncated sites in
  Alcotest.(check bool) "dropping a baseline line re-arms the gate" true
    (D.has_errors ds)

(* ---------------- budget threading ---------------- *)

let analyze entries = BT.analyze ~entries (Lazy.force idx)

let test_budget_clean_chain () =
  Alcotest.(check int) "threaded chain verifies" 0
    (List.length (analyze [ "Tf_budget_ok.verify" ]))

let test_budget_violations () =
  let ds = analyze [ "Tf_budget_drop.verify" ] in
  Alcotest.(check bool) "violations are errors" true (D.has_errors ds);
  let messages = String.concat "\n" (List.map (fun d -> d.D.message) ds) in
  Alcotest.(check bool) "omitted ?budget to middle is a drop" true
    (contains ~sub:"Tf_budget_drop.middle" messages
    && contains ~sub:"omits it" messages);
  Alcotest.(check bool) "helper reaches the kernel unbudgeted" true
    (contains ~sub:"Rk45.integrate" messages
    && contains ~sub:"no Budget.t in scope" messages)

let test_budget_entry_without_param () =
  let ds = analyze [ "Tf_budget_drop.helper" ] in
  Alcotest.(check bool) "entry lacking ?budget is an error" true
    (D.has_errors ds
    && contains ~sub:"does not accept a Budget.t"
         (String.concat "\n" (List.map (fun d -> d.D.message) ds)))

let test_budget_missing_entry () =
  let ds = analyze [ "Nope.missing" ] in
  Alcotest.(check bool) "unresolvable entry is an error" true
    (D.has_errors ds
    && contains ~sub:"not found in the typed index"
         (String.concat "\n" (List.map (fun d -> d.D.message) ds)))

(* ---------------- SARIF envelope ---------------- *)

let test_sarif_golden () =
  let ds =
    [
      D.error ~check:"phys-equality"
        ~loc:(D.File { path = "a.ml"; line = 3; col = 7 })
        "bad \"eq\"" ~hint:"use =";
      D.warn ~check:"spec-overlap" ~loc:(D.Model "acc/spec") "sets overlap";
    ]
  in
  let expected =
    {|{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"dwv_lint","rules":[{"id":"phys-equality"},{"id":"spec-overlap"}]}},"results":[|}
    ^ {|{"ruleId":"spec-overlap","level":"warning","message":{"text":"sets overlap"},"locations":[{"logicalLocations":[{"fullyQualifiedName":"acc/spec"}]}]},|}
    ^ {|{"ruleId":"phys-equality","level":"error","message":{"text":"bad \"eq\" (hint: use =)"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"a.ml"},"region":{"startLine":3,"startColumn":7}}}]}|}
    ^ {|]}]}|}
  in
  Alcotest.(check string) "SARIF envelope is stable" expected
    (D.report_to_sarif ds)

let suite =
  [
    Alcotest.test_case "index: fixture units and sources" `Quick
      test_index_units;
    Alcotest.test_case "index: ?budget param typed as Budget.t" `Quick
      test_index_budget_param;
    Alcotest.test_case "index: intra-corpus calls resolve canonically" `Quick
      test_index_call_resolution;
    Alcotest.test_case "phys-eq: allowlist is exactly the Expr.t sites" `Quick
      test_phys_eq_allow_sites;
    Alcotest.test_case "phys-eq: typed allow filters both engines" `Quick
      test_phys_eq_allow_filters_lint;
    Alcotest.test_case "alloc: boxed-loop classes all detected" `Quick
      test_alloc_boxed_loop;
    Alcotest.test_case "alloc: Pool task mutable capture flagged" `Quick
      test_alloc_task_state;
    Alcotest.test_case "alloc: clean preallocated loop is silent" `Quick
      test_alloc_clean_loop;
    Alcotest.test_case "alloc: unresolved entry is an info" `Quick
      test_alloc_unresolved_entry;
    Alcotest.test_case "alloc: report is deterministic" `Quick
      test_alloc_determinism;
    Alcotest.test_case "alloc: baseline round-trips and re-arms" `Quick
      test_alloc_baseline_roundtrip;
    Alcotest.test_case "budget: threaded chain verifies clean" `Quick
      test_budget_clean_chain;
    Alcotest.test_case "budget: drop and unbudgeted kernel caught" `Quick
      test_budget_violations;
    Alcotest.test_case "budget: entry without ?budget rejected" `Quick
      test_budget_entry_without_param;
    Alcotest.test_case "budget: unknown entry rejected" `Quick
      test_budget_missing_entry;
    Alcotest.test_case "sarif: envelope is golden-stable" `Quick
      test_sarif_golden;
  ]
