(* Determinism suite for the domain pool (the `@parallel` alias): the
   tentpole claim is that every fan-out site — gradient probes, frontier
   cells, Monte-Carlo rollouts — returns bit-identical results at any
   domain count. Each test runs the same workload at domains 1 (the
   sequential oracle: no workers are spawned) and at 2 or 4, and compares
   exactly, never with a tolerance. *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Mlp = Dwv_nn.Mlp
module Activation = Dwv_nn.Activation
module Rng = Dwv_util.Rng
module Verifier = Dwv_reach.Verifier
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Learner = Dwv_core.Learner
module Metrics = Dwv_core.Metrics
module Initset = Dwv_core.Initset
module Evaluate = Dwv_core.Evaluate
module Pool = Dwv_parallel.Pool
module Expr = Dwv_expr.Expr
module Fault = Dwv_robust.Fault
module Flowpipe = Dwv_reach.Flowpipe
module Taylor_reach = Dwv_reach.Taylor_reach
module Warm = Dwv_reach.Warm
module Acc = Dwv_systems.Acc
module Oscillator = Dwv_systems.Oscillator
module Threed = Dwv_systems.Threed

(* ---------------- pool mechanics ---------------- *)

let test_map_empty () =
  Pool.with_pool ~oversubscribe:true ~domains:4 (fun pool ->
      Alcotest.(check (array int)) "empty batch" [||] (Pool.map pool (fun x -> x + 1) [||]))

let test_map_single_item () =
  Pool.with_pool ~oversubscribe:true ~domains:4 (fun pool ->
      Alcotest.(check (array int)) "one item" [| 42 |] (Pool.map pool (fun x -> x * 2) [| 21 |]))

let test_map_fewer_items_than_domains () =
  Pool.with_pool ~oversubscribe:true ~domains:8 (fun pool ->
      Alcotest.(check (array int)) "2 items on 8 domains" [| 1; 4 |]
        (Pool.map pool (fun x -> x * x) [| 1; 2 |]))

let test_map_order_preserved () =
  Pool.with_pool ~oversubscribe:true ~domains:4 (fun pool ->
      let items = Array.init 100 (fun i -> i) in
      Alcotest.(check (array int)) "item order, not completion order"
        (Array.map (fun i -> 3 * i) items)
        (Pool.map pool (fun i -> 3 * i) items))

let test_mapi_passes_index () =
  Pool.with_pool ~oversubscribe:true ~domains:4 (fun pool ->
      Alcotest.(check (array int)) "index + item" [| 10; 21; 32 |]
        (Pool.mapi pool (fun i x -> x + i) [| 10; 20; 30 |]))

let test_sequential_pool_is_plain_map () =
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "no extra domains" 1 (Pool.domains pool);
      Alcotest.(check (array int)) "plain map" [| 2; 4; 6 |]
        (Pool.map pool (fun x -> 2 * x) [| 1; 2; 3 |]))

let test_create_rejects_nonpositive () =
  Alcotest.check_raises "domains = 0" (Invalid_argument "Pool.create: domains must be >= 1")
    (fun () -> ignore (Pool.create ~domains:0 ()))

exception Boom of int

let test_exception_propagates_and_pool_survives () =
  Pool.with_pool ~oversubscribe:true ~domains:4 (fun pool ->
      (match
         Pool.map pool (fun i -> if i mod 3 = 0 then raise (Boom i) else i)
           (Array.init 10 (fun i -> i + 1))
       with
      | _ -> Alcotest.fail "expected the task exception to re-raise"
      | exception Boom i ->
        (* items 3, 6, 9 all raise; the smallest index must win so the
           error is deterministic *)
        Alcotest.(check int) "smallest failing item" 3 i);
      (* the batch drained: the pool is immediately reusable *)
      Alcotest.(check (array int)) "pool not wedged" [| 1; 2; 3 |]
        (Pool.map pool (fun x -> x) [| 1; 2; 3 |]))

let test_map_reduce_float_sum_deterministic () =
  (* summing parallel results in item order must equal the sequential
     left fold bit-for-bit, even though float addition is not associative *)
  let items = Array.init 1000 (fun i -> 1.0 /. float_of_int (i + 1)) in
  let seq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 items in
  Pool.with_pool ~oversubscribe:true ~domains:4 (fun pool ->
      let par =
        Pool.map_reduce pool ~map:(fun x -> x *. x)
          ~reduce:(fun acc x -> acc +. x)
          ~init:0.0 items
      in
      Alcotest.(check (float 0.0)) "bit-identical sum" seq par)

let test_reuse_across_batches () =
  Pool.with_pool ~oversubscribe:true ~domains:4 (fun pool ->
      for k = 1 to 5 do
        let items = Array.init (10 * k) (fun i -> i) in
        Alcotest.(check (array int))
          (Printf.sprintf "batch %d" k)
          (Array.map (fun i -> i + k) items)
          (Pool.map pool (fun i -> i + k) items)
      done)

let test_clamped_to_hardware_cores () =
  let cores = Pool.default_domains () in
  Pool.with_pool ~domains:(cores + 7) (fun pool ->
      Alcotest.(check int) "clamped to hardware" cores (Pool.domains pool));
  Pool.with_pool ~oversubscribe:true ~domains:(cores + 7) (fun pool ->
      Alcotest.(check int) "oversubscribe keeps the request" (cores + 7)
        (Pool.domains pool))

let test_with_pool_poisoned_task_tears_down () =
  (* the smallest-index exception must escape [with_pool] itself — not a
     [Fun.protect] Finally_raised wrapper — and the workers must be
     joined on that path too: repeated poisoned rounds neither wedge nor
     accumulate domains. *)
  for _round = 1 to 20 do
    match
      Pool.with_pool ~oversubscribe:true ~domains:4 (fun pool ->
          Pool.map pool
            (fun i -> if i >= 5 then raise (Boom i) else i)
            (Array.init 16 (fun i -> i)))
    with
    | _ -> Alcotest.fail "expected the poisoned task to raise"
    | exception Boom i -> Alcotest.(check int) "smallest poisoned index" 5 i
  done;
  (* every round joined its domains: a fresh full-size pool still works *)
  Pool.with_pool ~oversubscribe:true ~domains:4 (fun pool ->
      Alcotest.(check (array int)) "clean restart" [| 0; 1; 2 |]
        (Pool.map pool (fun x -> x) [| 0; 1; 2 |]))

(* ---------------- Rng.split_n properties ---------------- *)

let prop_split_n_children_distinct =
  QCheck.Test.make ~name:"split_n children pairwise distinct" ~count:100
    QCheck.(pair small_nat (int_range 2 16))
    (fun (seed, n) ->
      let children = Rng.split_n (Rng.create seed) n in
      let firsts = Array.map (fun c -> Rng.next_int64 c) children in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Int64.equal firsts.(i) firsts.(j) then ok := false
        done
      done;
      !ok)

let prop_split_n_reproducible =
  QCheck.Test.make ~name:"split_n reproducible from the seed" ~count:100
    QCheck.(pair small_nat (int_range 1 16))
    (fun (seed, n) ->
      let a = Rng.split_n (Rng.create seed) n in
      let b = Rng.split_n (Rng.create seed) n in
      Array.for_all2
        (fun x y ->
          List.for_all
            (fun _ -> Int64.equal (Rng.next_int64 x) (Rng.next_int64 y))
            [ 1; 2; 3 ])
        a b)

let prop_split_n_prefix_stable =
  (* child i is a pure function of the parent seed and i: splitting off
     more children never changes the earlier ones *)
  QCheck.Test.make ~name:"split_n prefix stable under larger n" ~count:100
    QCheck.(triple small_nat (int_range 1 8) (int_range 0 8))
    (fun (seed, n, extra) ->
      let a = Rng.split_n (Rng.create seed) n in
      let b = Rng.split_n (Rng.create seed) (n + extra) in
      Array.for_all2
        (fun x y -> Int64.equal (Rng.next_int64 x) (Rng.next_int64 y))
        a (Array.sub b 0 n))

let test_split_n_edge_cases () =
  Alcotest.(check int) "zero children" 0 (Array.length (Rng.split_n (Rng.create 1) 0));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Rng.split_n: negative count") (fun () ->
      ignore (Rng.split_n (Rng.create 1) (-1)))

(* ---------------- learner determinism across domain counts ---------------- *)

let check_same_learn label (a : Learner.result) (b : Learner.result) =
  Alcotest.(check (array (float 0.0)))
    (label ^ ": identical theta")
    (Controller.params a.Learner.controller)
    (Controller.params b.Learner.controller);
  Alcotest.(check int) (label ^ ": same iterations") a.Learner.iterations b.Learner.iterations;
  Alcotest.(check int) (label ^ ": same verifier calls") a.Learner.verifier_calls
    b.Learner.verifier_calls;
  Alcotest.(check int) (label ^ ": same skipped probes") a.Learner.skipped_probes
    b.Learner.skipped_probes;
  Alcotest.(check bool) (label ^ ": same verdict") true (a.Learner.verdict = b.Learner.verdict);
  List.iter2
    (fun (p : Learner.history_point) (q : Learner.history_point) ->
      Alcotest.(check (float 0.0)) (label ^ ": same objective trace") p.Learner.objective
        q.Learner.objective)
    a.Learner.history b.Learner.history

let acc_learn_at domains =
  let cfg =
    { Learner.default_config with Learner.max_iters = 8; alpha = 0.2; beta = 0.2; seed = 7 }
  in
  Pool.with_pool ~oversubscribe:true ~domains (fun pool ->
      Learner.learn ~pool cfg ~metric:Metrics.Geometric ~spec:Acc.spec ~verify:Acc.verify
        ~init:Acc.initial_controller)

let test_acc_learner_domains_1_vs_4 () =
  check_same_learn "acc coordinate" (acc_learn_at 1) (acc_learn_at 4)

(* Tiny nonlinear closed loop (short horizon, small net) so SPSA learning
   under the POLAR-style verifier stays cheap; mirrors the faults suite. *)
let nn_learn_at ~name ~f ~dim domains =
  let lo = Array.make dim 0.0 and hi = Array.make dim 0.02 in
  let x0 = Box.make ~lo ~hi in
  let unsafe = Box.of_intervals (Array.make dim (I.make 5.0 6.0)) in
  let goal = Box.of_intervals (Array.make dim (I.make (-0.5) 0.5)) in
  let spec = Spec.make ~name ~x0 ~unsafe ~goal ~delta:0.1 ~steps:4 in
  let net =
    Mlp.create ~sizes:[ dim; 4; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] (Rng.create 5)
  in
  let verify c =
    match c with
    | Controller.Net { net; output_scale } ->
      Verifier.nn_flowpipe ~order:2 ~disturbance_slots:4 ~f ~delta:0.1 ~steps:4 ~net
        ~output_scale ~method_:Verifier.Polar ~x0 ()
    | Controller.Linear _ -> Alcotest.fail "NN controller expected"
  in
  let cfg =
    { Learner.default_config with
      Learner.max_iters = 3; gradient_mode = Learner.Spsa 2; seed = 3 }
  in
  Pool.with_pool ~oversubscribe:true ~domains (fun pool ->
      Learner.learn ~pool cfg ~metric:Metrics.Geometric ~spec ~verify
        ~init:(Controller.net ~output_scale:1.0 net))

let test_oscillator_learner_domains_1_vs_2_vs_4 () =
  let at = nn_learn_at ~name:"osc-par" ~f:Oscillator.dynamics ~dim:2 in
  let d1 = at 1 in
  check_same_learn "oscillator spsa d2" d1 (at 2);
  check_same_learn "oscillator spsa d4" d1 (at 4)

let test_threed_learner_domains_1_vs_4 () =
  let at = nn_learn_at ~name:"threed-par" ~f:Threed.dynamics ~dim:3 in
  check_same_learn "threed spsa" (at 1) (at 4)

(* ---------------- initial-set search determinism ---------------- *)

let check_same_initset label (a : Initset.result) (b : Initset.result) =
  Alcotest.(check bool) (label ^ ": identical certified cells") true
    (a.Initset.verified = b.Initset.verified);
  Alcotest.(check bool) (label ^ ": identical rejected cells") true
    (a.Initset.rejected = b.Initset.rejected);
  Alcotest.(check (float 0.0)) (label ^ ": identical coverage") a.Initset.coverage
    b.Initset.coverage;
  Alcotest.(check int) (label ^ ": same verifier calls") a.Initset.verifier_calls
    b.Initset.verifier_calls

(* Shrink the ACC goal so the top-level cell fails and the search refines
   through multi-cell frontiers (the full goal certifies X_0 in one call,
   which never exercises the fan-out). *)
let acc_tight_goal =
  let g = Acc.spec.Spec.goal in
  let lo = Box.lo g and hi = Box.hi g in
  Box.make
    ~lo:(Array.mapi (fun i l -> l +. (0.3 *. (hi.(i) -. l))) lo)
    ~hi:(Array.mapi (fun i h -> h -. (0.3 *. (h -. (Box.lo g).(i)))) hi)

let acc_initset_at domains =
  let c = Acc.initial_controller in
  Pool.with_pool ~oversubscribe:true ~domains (fun pool ->
      Initset.search ~max_depth:3 ~pool
        ~verify:(fun cell -> Acc.verify_from cell c)
        ~goal:acc_tight_goal ~x0:Acc.spec.Spec.x0 ())

let test_acc_initset_domains_1_vs_4 () =
  let d1 = acc_initset_at 1 in
  Alcotest.(check bool) "search actually refined" true (d1.Initset.verifier_calls > 1);
  check_same_initset "acc initset" d1 (acc_initset_at 4)

let acc_initset_even_at domains =
  let c = Acc.initial_controller in
  Pool.with_pool ~oversubscribe:true ~domains (fun pool ->
      Initset.search_even ~max_rounds:3 ~pool
        ~verify:(fun cell -> Acc.verify_from cell c)
        ~goal:acc_tight_goal ~x0:Acc.spec.Spec.x0 ())

let test_acc_initset_even_domains_1_vs_4 () =
  check_same_initset "acc even partition" (acc_initset_even_at 1) (acc_initset_even_at 4)

(* ---------------- intra-call flowpipe parallelism ---------------- *)

(* Compare flowpipes through their step boxes (plain floats): TM
   structural equality is unreliable because bound caches fill lazily. *)
let check_same_pipe label a b =
  Alcotest.(check bool) (label ^ ": same divergence flag") (Flowpipe.diverged a)
    (Flowpipe.diverged b);
  let ba = Flowpipe.step_boxes a and bb = Flowpipe.step_boxes b in
  Alcotest.(check int) (label ^ ": same step count") (List.length ba) (List.length bb);
  List.iter2
    (fun x y -> Alcotest.(check bool) (label ^ ": bit-identical step box") true (x = y))
    ba bb

(* Behavior cloning is seeded, so every domain count sees the identical
   controller. *)
let osc_controller = lazy (Oscillator.pretrained_controller (Rng.create 1))

let osc_pipe_at ~method_ domains =
  Pool.with_pool ~oversubscribe:true ~domains (fun pool ->
      Oscillator.verify ~method_ ~pool (Lazy.force osc_controller))

let test_intra_call_polar_domains_1_vs_4 () =
  check_same_pipe "polar intra-call"
    (osc_pipe_at ~method_:Verifier.Polar 1)
    (osc_pipe_at ~method_:Verifier.Polar 4)

let test_intra_call_bernstein_domains_1_vs_4 () =
  (* samples_per_dim = 10 on a 2-D plant is a 100-point remainder grid,
     over the parallel-tabulation threshold, so the pool path engages *)
  let method_ = Verifier.Bernstein { degrees = [| 2; 2 |]; samples_per_dim = 10 } in
  check_same_pipe "bernstein intra-call" (osc_pipe_at ~method_ 1) (osc_pipe_at ~method_ 4)

let test_lie_table_published_once () =
  (* the registry is publish-once and process-global: after the first
     build of a (dynamics, order) key, repeated calls and every pool
     worker adopt the published table instead of re-deriving it, so the
     registry size must not move *)
  let t1 = Taylor_reach.lie_table ~f:Oscillator.dynamics ~order:3 in
  let published = Taylor_reach.lie_registry_size () in
  let t2 = Taylor_reach.lie_table ~f:Oscillator.dynamics ~order:3 in
  Alcotest.(check int) "repeat call publishes nothing" published
    (Taylor_reach.lie_registry_size ());
  Alcotest.(check bool) "repeat call returns the published table" true (t1 = t2);
  Pool.with_pool ~oversubscribe:true ~domains:4 (fun pool ->
      let tables =
        Pool.map pool
          (fun () -> Taylor_reach.lie_table ~f:Oscillator.dynamics ~order:3)
          (Array.make 8 ())
      in
      Alcotest.(check int) "no worker republishes the table" published
        (Taylor_reach.lie_registry_size ());
      Array.iter
        (fun t -> Alcotest.(check bool) "workers see the same table" true (t = t1))
        tables);
  (* a key nobody has asked for yet really is a fresh entry *)
  let fresh_f = [| Expr.neg (Expr.var 1); Expr.var 0 |] in
  ignore (Taylor_reach.lie_table ~f:fresh_f ~order:2 : Taylor_reach.lie_table);
  Alcotest.(check int) "an unseen key publishes one entry" (published + 1)
    (Taylor_reach.lie_registry_size ())

(* ---------------- incremental re-verification (warm starts) ---------------- *)

(* Small closed loop (short horizon, tiny net) so the robust verifier is
   cheap enough for property-based warm-vs-cold comparison. *)
let warm_x0 = Box.make ~lo:[| 0.0; 0.0 |] ~hi:[| 0.02; 0.02 |]
let warm_unsafe = Box.of_intervals (Array.make 2 (I.make 5.0 6.0))
let warm_goal = Box.of_intervals (Array.make 2 (I.make (-0.5) 0.5))

let warm_net =
  lazy (Mlp.create ~sizes:[ 2; 4; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] (Rng.create 5))

let warm_robust ?warm x0 =
  Verifier.nn_flowpipe_robust ~order:2 ~disturbance_slots:4 ?warm ~f:Oscillator.dynamics
    ~delta:0.1 ~steps:6 ~net:(Lazy.force warm_net) ~output_scale:1.0 ~method_:Verifier.Polar
    ~x0 ()

let warm_donor = lazy (warm_robust warm_x0)
let warm_verdict p = Verifier.check ~unsafe:warm_unsafe ~goal:warm_goal p

let test_warm_trace_replay_hits_every_substep () =
  let donor = Lazy.force warm_donor in
  (match donor.Verifier.warm with
  | None -> Alcotest.fail "successful robust call must donate a trace"
  | Some w -> Alcotest.(check int) "one enclosure per sub-step" 6 (Warm.length w));
  Dwv_util.Counters.reset ();
  let again = warm_robust ?warm:donor.Verifier.warm warm_x0 in
  Alcotest.(check int) "every sub-step warm-started" 6 (Dwv_util.Counters.get "warm_hits");
  Alcotest.(check int) "no hint degraded" 0 (Dwv_util.Counters.get "warm_poisoned");
  (* warmth changes only the search for the a-priori enclosure, never
     the judgement *)
  Alcotest.(check bool) "same verdict as the donor" true
    (warm_verdict again.Verifier.pipe = warm_verdict donor.Verifier.pipe)

let prop_warm_verdict_matches_cold =
  QCheck.Test.make ~name:"warm-started verification agrees with cold on nearby cells"
    ~count:20
    QCheck.(pair (int_range 0 100) (int_range 0 100))
    (fun (a, b) ->
      let donor = Lazy.force warm_donor in
      (* a nearby cell: translated and slightly reshaped, the situation
         of a child frontier cell or the next gradient probe *)
      let dx = 0.0001 *. float_of_int a and dy = 0.0001 *. float_of_int b in
      let lo = Box.lo warm_x0 and hi = Box.hi warm_x0 in
      let cell =
        Box.make
          ~lo:[| lo.(0) +. dx; lo.(1) +. dy |]
          ~hi:[| hi.(0) +. dx; hi.(1) +. (0.5 *. dy) |]
      in
      Dwv_util.Counters.reset ();
      let w = warm_robust ?warm:donor.Verifier.warm cell in
      let attempted =
        Dwv_util.Counters.get "warm_hits" + Dwv_util.Counters.get "warm_poisoned"
      in
      let c = warm_robust cell in
      attempted > 0
      && warm_verdict w.Verifier.pipe = warm_verdict c.Verifier.pipe
      && Flowpipe.diverged w.Verifier.pipe = Flowpipe.diverged c.Verifier.pipe)

let test_warm_poison_degrades_to_cold () =
  let donor = Lazy.force warm_donor in
  let cold = warm_robust warm_x0 in
  Dwv_util.Counters.reset ();
  let poisoned =
    Fault.with_faults ~seed:11 [ (0, Fault.Warm_poison) ] (fun () ->
        warm_robust ?warm:donor.Verifier.warm warm_x0)
  in
  Alcotest.(check int) "no warm hit survives the poison" 0
    (Dwv_util.Counters.get "warm_hits");
  Alcotest.(check int) "every hint counted as poisoned" 6
    (Dwv_util.Counters.get "warm_poisoned");
  (* the gate discards spoiled hints before they can touch the
     iteration, so the result is the bit-identical cold pipe *)
  check_same_pipe "poisoned warm = cold" cold.Verifier.pipe poisoned.Verifier.pipe

let warm_learn_at domains =
  (* a goal the tiny controller cannot reach, so the learner runs its
     full probe fan-out instead of certifying the start cell at once *)
  let far_goal = Box.of_intervals (Array.make 2 (I.make 0.3 0.4)) in
  let spec =
    Spec.make ~name:"warm-learn" ~x0:warm_x0 ~unsafe:warm_unsafe ~goal:far_goal ~delta:0.1
      ~steps:6
  in
  let vw ?warm c =
    match c with
    | Controller.Net { net; output_scale } ->
      let r =
        Verifier.nn_flowpipe_robust ~order:2 ~disturbance_slots:4 ?warm
          ~f:Oscillator.dynamics ~delta:0.1 ~steps:6 ~net ~output_scale
          ~method_:Verifier.Polar ~x0:warm_x0 ()
      in
      (r.Verifier.pipe, r.Verifier.warm)
    | Controller.Linear _ -> Alcotest.fail "NN controller expected"
  in
  let cfg =
    { Learner.default_config with
      Learner.max_iters = 3; gradient_mode = Learner.Spsa 2; seed = 3 }
  in
  Pool.with_pool ~oversubscribe:true ~domains (fun pool ->
      Learner.learn ~pool ~verify_warm:vw cfg ~metric:Metrics.Geometric ~spec
        ~verify:(fun c -> fst (vw c))
        ~init:(Controller.net ~output_scale:1.0 (Lazy.force warm_net)))

let test_warm_learner_domains_1_vs_4 () =
  Dwv_util.Counters.reset ();
  let d1 = warm_learn_at 1 in
  Alcotest.(check bool) "probes actually warm-start" true
    (Dwv_util.Counters.get "warm_hits" > 0);
  check_same_learn "warm learner" d1 (warm_learn_at 4)

(* Tightened goal (as in the acc initset tests) so the top cell fails
   and the search refines: children then re-verify incrementally against
   their parent's trace. *)
let osc_tight_goal =
  let g = Oscillator.spec.Spec.goal in
  let lo = Box.lo g and hi = Box.hi g in
  Box.make
    ~lo:(Array.mapi (fun i l -> l +. (0.3 *. (hi.(i) -. l))) lo)
    ~hi:(Array.mapi (fun i h -> h -. (0.3 *. (h -. (Box.lo g).(i)))) hi)

let osc_warm_initset_at domains =
  let c = Lazy.force osc_controller in
  Pool.with_pool ~oversubscribe:true ~domains (fun pool ->
      Initset.search ~max_depth:2 ~pool
        ~verify_warm:(fun ?warm cell -> Oscillator.verify_warm_from ~pool ?warm cell c)
        ~verify:(fun cell -> Oscillator.verify_from ~pool cell c)
        ~goal:osc_tight_goal ~x0:Oscillator.spec.Spec.x0 ())

let test_warm_initset_domains_1_vs_4 () =
  Dwv_util.Counters.reset ();
  let d1 = osc_warm_initset_at 1 in
  Alcotest.(check bool) "warm search refined" true (d1.Initset.verifier_calls > 1);
  Alcotest.(check bool) "children warm-start from parents" true
    (Dwv_util.Counters.get "warm_hits" > 0);
  check_same_initset "oscillator warm initset" d1 (osc_warm_initset_at 4)

(* ---------------- Monte-Carlo rate determinism ---------------- *)

let rates_at ~sys ~spec ~controller domains =
  Pool.with_pool ~oversubscribe:true ~domains (fun pool ->
      Evaluate.rates ~n:200 ~pool ~rng:(Rng.create 2024) ~sys ~controller ~spec ())

let check_same_rates label (a : Evaluate.rates) (b : Evaluate.rates) =
  Alcotest.(check (float 0.0)) (label ^ ": identical SC") a.Evaluate.safe_percent
    b.Evaluate.safe_percent;
  Alcotest.(check (float 0.0)) (label ^ ": identical GR") a.Evaluate.goal_percent
    b.Evaluate.goal_percent;
  Alcotest.(check int) (label ^ ": same n") a.Evaluate.n b.Evaluate.n

let test_acc_rates_domains_1_vs_2_vs_4 () =
  let controller = Acc.sim_controller Acc.initial_controller in
  let at = rates_at ~sys:Acc.sampled ~spec:Acc.spec ~controller in
  let d1 = at 1 in
  check_same_rates "acc rates d2" d1 (at 2);
  check_same_rates "acc rates d4" d1 (at 4)

let test_oscillator_rates_domains_1_vs_4 () =
  let controller = Oscillator.sim_controller (Oscillator.pretrained_controller (Rng.create 1)) in
  let at = rates_at ~sys:Oscillator.sampled ~spec:Oscillator.spec ~controller in
  check_same_rates "oscillator rates" (at 1) (at 4)

let test_rates_parent_stream_advance_identical () =
  (* the caller's generator must advance the same with and without a
     pool, so downstream draws do not depend on the execution mode *)
  let draw_after domains =
    let rng = Rng.create 99 in
    let _ =
      Pool.with_pool ~oversubscribe:true ~domains (fun pool ->
          Evaluate.rates ~n:50 ~pool ~rng ~sys:Acc.sampled
            ~controller:(Acc.sim_controller Acc.initial_controller) ~spec:Acc.spec ())
    in
    Rng.next_int64 rng
  in
  Alcotest.(check bool) "identical parent stream position" true
    (Int64.equal (draw_after 1) (draw_after 4))

let suite =
  [
    Alcotest.test_case "map: empty batch" `Quick test_map_empty;
    Alcotest.test_case "map: single item" `Quick test_map_single_item;
    Alcotest.test_case "map: items << domains" `Quick test_map_fewer_items_than_domains;
    Alcotest.test_case "map: order preserved" `Quick test_map_order_preserved;
    Alcotest.test_case "mapi passes index" `Quick test_mapi_passes_index;
    Alcotest.test_case "domains=1 is plain map" `Quick test_sequential_pool_is_plain_map;
    Alcotest.test_case "create rejects domains < 1" `Quick test_create_rejects_nonpositive;
    Alcotest.test_case "exception propagates, pool survives" `Quick
      test_exception_propagates_and_pool_survives;
    Alcotest.test_case "map_reduce float sum deterministic" `Quick
      test_map_reduce_float_sum_deterministic;
    Alcotest.test_case "pool reusable across batches" `Quick test_reuse_across_batches;
    Alcotest.test_case "pool clamps to hardware cores" `Quick test_clamped_to_hardware_cores;
    Alcotest.test_case "with_pool tears down on poisoned task" `Quick
      test_with_pool_poisoned_task_tears_down;
    QCheck_alcotest.to_alcotest prop_split_n_children_distinct;
    QCheck_alcotest.to_alcotest prop_split_n_reproducible;
    QCheck_alcotest.to_alcotest prop_split_n_prefix_stable;
    Alcotest.test_case "split_n edge cases" `Quick test_split_n_edge_cases;
    Alcotest.test_case "acc learner: domains 1 = 4" `Quick test_acc_learner_domains_1_vs_4;
    Alcotest.test_case "oscillator learner: domains 1 = 2 = 4" `Quick
      test_oscillator_learner_domains_1_vs_2_vs_4;
    Alcotest.test_case "threed learner: domains 1 = 4" `Quick test_threed_learner_domains_1_vs_4;
    Alcotest.test_case "acc initset: domains 1 = 4" `Quick test_acc_initset_domains_1_vs_4;
    Alcotest.test_case "acc even partition: domains 1 = 4" `Quick
      test_acc_initset_even_domains_1_vs_4;
    Alcotest.test_case "intra-call polar step: domains 1 = 4" `Quick
      test_intra_call_polar_domains_1_vs_4;
    Alcotest.test_case "intra-call bernstein grid: domains 1 = 4" `Quick
      test_intra_call_bernstein_domains_1_vs_4;
    Alcotest.test_case "lie table published once" `Quick test_lie_table_published_once;
    Alcotest.test_case "warm trace replay hits every sub-step" `Quick
      test_warm_trace_replay_hits_every_substep;
    QCheck_alcotest.to_alcotest prop_warm_verdict_matches_cold;
    Alcotest.test_case "poisoned warm hints degrade to the cold pipe" `Quick
      test_warm_poison_degrades_to_cold;
    Alcotest.test_case "warm learner: domains 1 = 4" `Quick test_warm_learner_domains_1_vs_4;
    Alcotest.test_case "warm initset: domains 1 = 4" `Quick test_warm_initset_domains_1_vs_4;
    Alcotest.test_case "acc rates: domains 1 = 2 = 4" `Quick test_acc_rates_domains_1_vs_2_vs_4;
    Alcotest.test_case "oscillator rates: domains 1 = 4" `Quick
      test_oscillator_rates_domains_1_vs_4;
    Alcotest.test_case "rates advance parent stream identically" `Quick
      test_rates_parent_stream_advance_identical;
  ]

let () = Alcotest.run "dwv-parallel" [ ("parallel", suite) ]
