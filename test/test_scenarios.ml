(* Scenario-farm suite (`dune build @scenarios`): DSL round-trip
   properties over fuzzer-generated scenarios, the builtin DSL strings
   cross-checked bit-for-bit against the module constants they mirror,
   the committed benchmark scenarios verifying Reach_avoid, the
   regression corpus examining clean, and a 200-case fuzz smoke with the
   differential soundness oracle replayed at domains 1 vs 2. Spawns
   domains and runs hundreds of end-to-end verifications, so it rides
   its own alias like @faults / @certs / @parallel. *)

module Box = Dwv_interval.Box
module Expr = Dwv_expr.Expr
module Rng = Dwv_util.Rng
module Pool = Dwv_parallel.Pool
module Spec = Dwv_core.Spec
module Verifier = Dwv_reach.Verifier
module Scenario = Dwv_scenario.Scenario
module Scn_verify = Dwv_scenario.Scn_verify
module Scn_registry = Dwv_scenario.Scn_registry
module Scn_fuzz = Dwv_scenario.Scn_fuzz

(* ---------------- DSL round-trip ---------------- *)

let prop_dsl_roundtrip =
  QCheck.Test.make ~name:"scenario DSL to_string/of_string round-trips"
    ~count:200 QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let scn = Scn_fuzz.generate (Rng.create seed) 0 in
      Scenario.equal scn (Scenario.of_string (Scenario.to_string scn)))

let prop_dsl_stable =
  QCheck.Test.make ~name:"scenario DSL serialization is a fixpoint"
    ~count:100 QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let scn = Scn_fuzz.generate (Rng.create seed) 1 in
      let s = Scenario.to_string scn in
      s = Scenario.to_string (Scenario.of_string s))

let test_dsl_rejects_malformed () =
  List.iter
    (fun s ->
      match Scenario.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail ("accepted malformed DSL: " ^ s))
    [
      "";
      "(scenario)";
      "(scenario (name x))";
      "(scenario (name x) (dim 1) (inputs 1) (delta 0.1) (steps 2) \
       (dynamics \"u0\") (init (0 1) (0 1)) (goal (0 1)) \
       (controller (affine (0 0))) (method zonotope))";
      "(scenario (name x) (dim 1) (inputs 1) (delta -0.1) (steps 2) \
       (dynamics \"u0\") (init (0 1)) (goal (0 1)) \
       (controller (affine (0 0))) (method zonotope))";
    ]

(* ---------------- builtin DSL strings vs module constants ------------ *)

let box_bits b = (Array.map Int64.bits_of_float (Box.lo b),
                  Array.map Int64.bits_of_float (Box.hi b))

let check_builtin name (spec : Spec.t) (dynamics : Expr.t array) =
  let entry =
    match Scn_registry.find name with
    | Some e -> e
    | None -> Alcotest.fail ("builtin not registered: " ^ name)
  in
  let scn = entry.Scn_registry.scenario in
  Alcotest.(check string) "name" name scn.Scenario.name;
  Alcotest.(check int) "dim" (Spec.dim spec) scn.Scenario.dim;
  Alcotest.(check int) "steps" spec.Spec.steps scn.Scenario.steps;
  Alcotest.(check bool) "delta bit-equal" true
    (Int64.bits_of_float spec.Spec.delta
    = Int64.bits_of_float scn.Scenario.delta);
  Alcotest.(check bool) "init bit-equal" true
    (box_bits spec.Spec.x0 = box_bits scn.Scenario.init);
  Alcotest.(check bool) "goal bit-equal" true
    (box_bits spec.Spec.goal = box_bits scn.Scenario.goal);
  (match scn.Scenario.avoid with
  | [ unsafe ] ->
    Alcotest.(check bool) "unsafe bit-equal" true
      (box_bits spec.Spec.unsafe = box_bits unsafe)
  | l -> Alcotest.failf "expected one avoid box, got %d" (List.length l));
  Alcotest.(check int) "dynamics arity" (Array.length dynamics)
    (Array.length scn.Scenario.f);
  Array.iteri
    (fun i e ->
      Alcotest.(check bool)
        (Fmt.str "f.(%d) structurally equal" i)
        true
        (Expr.equal e scn.Scenario.f.(i)))
    dynamics

let test_builtin_acc () =
  check_builtin "acc" Dwv_systems.Acc.spec Dwv_systems.Acc.dynamics

let test_builtin_pendulum () =
  check_builtin "pendulum" Dwv_systems.Pendulum.spec
    Dwv_systems.Pendulum.dynamics

let test_builtin_oscillator () =
  check_builtin "oscillator" Dwv_systems.Oscillator.spec
    Dwv_systems.Oscillator.dynamics

let test_builtin_threed () =
  check_builtin "threed" Dwv_systems.Threed.spec Dwv_systems.Threed.dynamics

(* ---------------- committed benchmark scenarios ---------------- *)

let scenario_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".scn")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let benchmark_dir = "../examples/scenarios"
let corpus_dir = "scenarios/corpus"

let test_benchmarks_verify () =
  let files = scenario_files benchmark_dir in
  Alcotest.(check int) "four benchmark scenarios" 4 (List.length files);
  List.iter
    (fun path ->
      let entry = Scn_registry.of_file path in
      let controller = entry.Scn_registry.init (Rng.create 1) in
      let report = entry.Scn_registry.verify_robust controller in
      Alcotest.(check bool)
        (Filename.basename path ^ " verifies Reach_avoid")
        true
        (report.Scn_verify.verdict = Verifier.Reach_avoid))
    files

let test_benchmark_files_roundtrip () =
  List.iter
    (fun path ->
      let scn = Scenario.of_file path in
      Alcotest.(check bool)
        (Filename.basename path ^ " round-trips")
        true
        (Scenario.equal scn (Scenario.of_string (Scenario.to_string scn))))
    (scenario_files benchmark_dir @ scenario_files corpus_dir)

(* ---------------- regression corpus ---------------- *)

let test_corpus_examines_clean () =
  let files = scenario_files corpus_dir in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun path ->
      let scn = Scenario.of_file path in
      let r = Scn_fuzz.examine ~rng:(Rng.create 42) scn in
      match r.Scn_fuzz.oracle with
      | None -> ()
      | Some reason ->
        Alcotest.failf "%s: soundness violation: %s" (Filename.basename path)
          reason)
    files

let test_zoh_aliasing_not_verified () =
  (* the hot-gain scenario diverges under the executed zero-order-hold
     loop even though continuous feedback contracts: ZOH-faithful
     verification must not claim Reach_avoid (regression for the
     substitute-u-into-f bug the fuzzer caught) *)
  let scn = Scenario.of_file (Filename.concat corpus_dir "zoh-aliasing.scn") in
  let controller = Scenario.make_controller scn (Rng.create 1) in
  let report = Scn_verify.verify_robust scn controller in
  Alcotest.(check bool) "not Reach_avoid" true
    (report.Scn_verify.verdict <> Verifier.Reach_avoid)

(* ---------------- fuzz campaign smoke ---------------- *)

let fuzz_seed = 42
let fuzz_count = 200

let test_fuzz_smoke_no_violations () =
  let r = Scn_fuzz.run ~count:fuzz_count ~seed:fuzz_seed () in
  Alcotest.(check int) "record count" fuzz_count (Array.length r.Scn_fuzz.records);
  Array.iter
    (fun (rec_ : Scn_fuzz.record) ->
      if rec_.Scn_fuzz.violation then
        Alcotest.failf "[%d] %s: %s" rec_.Scn_fuzz.index rec_.Scn_fuzz.name
          rec_.Scn_fuzz.oracle)
    r.Scn_fuzz.records;
  Alcotest.(check int) "zero violations" 0 (Scn_fuzz.violations r)

let test_fuzz_deterministic_across_domains () =
  let seq = Scn_fuzz.run ~count:fuzz_count ~seed:fuzz_seed () in
  let par =
    Pool.with_pool ~domains:2 (fun pool ->
        Scn_fuzz.run ~pool ~count:fuzz_count ~seed:fuzz_seed ())
  in
  let keys r = Array.map Scn_fuzz.determinism_key r.Scn_fuzz.records in
  Alcotest.(check (array string))
    "records bit-identical at domains 1 vs 2 (minus latency)" (keys seq)
    (keys par)

let test_fuzz_shrink_preserves_wellformedness () =
  (* shrinking a non-violating scenario is a no-op that must at least
     return a valid, serializable scenario *)
  let scn = Scn_fuzz.generate (Rng.create 5) 3 in
  let shrunk = Scn_fuzz.shrink ~probe_seed:17 scn in
  Alcotest.(check bool) "shrunk scenario round-trips" true
    (Scenario.equal shrunk
       (Scenario.of_string (Scenario.to_string shrunk)))

let () =
  Alcotest.run "dwv-scenarios"
    [
      ( "scenarios",
        [
          QCheck_alcotest.to_alcotest prop_dsl_roundtrip;
          QCheck_alcotest.to_alcotest prop_dsl_stable;
          Alcotest.test_case "DSL rejects malformed" `Quick test_dsl_rejects_malformed;
          Alcotest.test_case "builtin acc matches module" `Quick test_builtin_acc;
          Alcotest.test_case "builtin pendulum matches module" `Quick test_builtin_pendulum;
          Alcotest.test_case "builtin oscillator matches module" `Quick test_builtin_oscillator;
          Alcotest.test_case "builtin threed matches module" `Quick test_builtin_threed;
          Alcotest.test_case "benchmarks verify" `Quick test_benchmarks_verify;
          Alcotest.test_case "benchmark files round-trip" `Quick test_benchmark_files_roundtrip;
          Alcotest.test_case "corpus examines clean" `Quick test_corpus_examines_clean;
          Alcotest.test_case "zoh aliasing not verified" `Quick test_zoh_aliasing_not_verified;
          Alcotest.test_case "fuzz smoke: no violations" `Quick test_fuzz_smoke_no_violations;
          Alcotest.test_case "fuzz deterministic across domains" `Quick test_fuzz_deterministic_across_domains;
          Alcotest.test_case "shrink preserves well-formedness" `Quick test_fuzz_shrink_preserves_wellformedness;
        ] );
    ]
