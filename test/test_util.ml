(* Tests for dwv_util: RNG determinism and distributions, statistics,
   float helpers, table rendering. *)

module Rng = Dwv_util.Rng
module Stats = Dwv_util.Stats
module Floatx = Dwv_util.Floatx
module Table = Dwv_util.Table
module Trend = Dwv_util.Trend

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds diverge"
    false
    (Rng.next_int64 a = Rng.next_int64 b)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let c1 = Rng.next_int64 child in
  (* child stream must not simply mirror the parent stream *)
  let p1 = Rng.next_int64 parent in
  Alcotest.(check bool) "split stream differs" true (c1 <> p1)

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of [0,1): %g" x
  done

let test_rng_int_range () =
  let rng = Rng.create 4 in
  for _ = 1 to 10_000 do
    let k = Rng.int rng 17 in
    if k < 0 || k >= 17 then Alcotest.failf "int out of range: %d" k
  done

let test_rng_int_not_constant () =
  let rng = Rng.create 5 in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 1000 do
    Hashtbl.replace seen (Rng.int rng 10) ()
  done;
  Alcotest.(check bool) "covers most residues" true (Hashtbl.length seen >= 9)

let test_rng_gaussian_moments () =
  let rng = Rng.create 6 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  let mean = Stats.mean xs and std = Stats.std xs in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.03);
  Alcotest.(check bool) "std near 1" true (Float.abs (std -. 1.0) < 0.03)

let test_rng_uniform_bounds () =
  let rng = Rng.create 8 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng ~lo:(-3.0) ~hi:5.0 in
    if x < -3.0 || x >= 5.0 then Alcotest.failf "uniform out of range: %g" x
  done

let test_rng_direction_unit_norm () =
  let rng = Rng.create 9 in
  for _ = 1 to 100 do
    let d = Rng.direction rng 5 in
    let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 d) in
    check_float "unit norm" 1.0 norm
  done

let test_rng_rademacher () =
  let rng = Rng.create 10 in
  let d = Rng.rademacher rng 1000 in
  Array.iter (fun x -> if x <> 1.0 && x <> -1.0 then Alcotest.failf "bad entry %g" x) d;
  let plus = Array.fold_left (fun acc x -> if x > 0.0 then acc + 1 else acc) 0 d in
  Alcotest.(check bool) "roughly balanced" true (plus > 400 && plus < 600)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 11 in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Rng.shuffle_in_place rng b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" a sorted

let test_stats_mean_std () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" (5.0 /. 3.0) (Stats.variance xs)

let test_stats_quantiles () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "median" 2.5 (Stats.median xs);
  check_float "q0" 1.0 (Stats.quantile xs 0.0);
  check_float "q1" 4.0 (Stats.quantile xs 1.0)

let test_stats_rate () =
  check_float "rate" 75.0 (Stats.rate_percent [| true; true; true; false |])

let test_stats_empty_raises () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty array") (fun () ->
      ignore (Stats.mean [||]))

let test_floatx_clamp () =
  check_float "below" 0.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 (-5.0));
  check_float "above" 1.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 5.0);
  check_float "inside" 0.5 (Floatx.clamp ~lo:0.0 ~hi:1.0 0.5)

let test_floatx_sigmoid () =
  check_float "at 0" 0.5 (Floatx.sigmoid 0.0);
  Alcotest.(check bool) "saturates high" true (Floatx.sigmoid 50.0 > 0.999999);
  Alcotest.(check bool) "saturates low" true (Floatx.sigmoid (-50.0) < 1e-6);
  (* symmetric: s(-x) = 1 - s(x) *)
  check_float "symmetry" (1.0 -. Floatx.sigmoid 1.7) (Floatx.sigmoid (-1.7))

let test_floatx_linspace () =
  let xs = Floatx.linspace 0.0 1.0 5 in
  Alcotest.(check int) "length" 5 (Array.length xs);
  check_float "first" 0.0 xs.(0);
  check_float "last" 1.0 xs.(4);
  check_float "middle" 0.5 xs.(2)

let test_floatx_kahan () =
  let xs = Array.make 10_000 0.1 in
  Alcotest.(check (float 1e-10)) "kahan sum" 1000.0 (Floatx.kahan_sum xs)

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "2345" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  (* aligned: every line has the same prefix width before 'value' column *)
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 5 (List.length lines)

let test_table_arity_check () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Table.add_row: row width does not match header") (fun () ->
      Table.add_row t [ "only-one" ])

module Svg_plot = Dwv_util.Svg_plot

let test_svg_scene_renders () =
  let plot = Svg_plot.create ~title:"test scene" () in
  Svg_plot.add_box ~kind:`Goal plot ~x_lo:1.0 ~x_hi:2.0 ~y_lo:0.0 ~y_hi:1.0;
  Svg_plot.add_box ~kind:`Unsafe ~label:"Xu" plot ~x_lo:(-1.0) ~x_hi:0.0 ~y_lo:0.0 ~y_hi:0.5;
  Svg_plot.add_polyline plot [ (0.0, 0.0); (1.5, 0.5); (2.0, 1.0) ];
  let svg = Svg_plot.render plot in
  List.iter
    (fun needle ->
      if not
           (let n = String.length needle in
            let rec scan i =
              i + n <= String.length svg && (String.sub svg i n = needle || scan (i + 1))
            in
            scan 0)
      then Alcotest.failf "missing %S in rendered svg" needle)
    [ "<svg"; "</svg>"; "<rect"; "<polyline"; "test scene"; "Xu" ]

let test_svg_empty_scene_raises () =
  let plot = Svg_plot.create ~title:"empty" () in
  Alcotest.check_raises "empty" (Invalid_argument "Svg_plot.render: empty scene") (fun () ->
      ignore (Svg_plot.render plot))

let test_svg_rect_validation () =
  let plot = Svg_plot.create ~title:"bad" () in
  Alcotest.check_raises "inverted" (Invalid_argument "Svg_plot.add_rect: empty rectangle")
    (fun () -> Svg_plot.add_rect plot ~x_lo:1.0 ~x_hi:0.0 ~y_lo:0.0 ~y_hi:1.0)

let test_svg_file_save () =
  let plot = Svg_plot.create ~title:"file" () in
  Svg_plot.add_box ~kind:`Reach plot ~x_lo:0.0 ~x_hi:1.0 ~y_lo:0.0 ~y_hi:1.0;
  let path = Filename.temp_file "dwv_plot" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Svg_plot.save path plot;
      let ic = open_in path in
      let len = in_channel_length ic in
      close_in ic;
      Alcotest.(check bool) "file non-empty" true (len > 100))

(* ---------- counter trend ratchet ---------- *)

let test_trend_regressions () =
  let prev = [ ("cache_hits", 10); ("cache_misses", 2); ("nn_flowpipes", 5) ] in
  Alcotest.(check (list string))
    "identical snapshot is clean" []
    (Trend.regressions ~prev prev);
  Alcotest.(check (list string))
    "more hits, fewer misses is clean" []
    (Trend.regressions ~prev
       [ ("cache_hits", 12); ("cache_misses", 0); ("nn_flowpipes", 5) ]);
  let msgs =
    Trend.regressions ~prev
      [ ("cache_hits", 10); ("cache_misses", 3); ("nn_flowpipes", 6) ]
  in
  Alcotest.(check int) "miss growth + work growth + rate drop" 3 (List.length msgs);
  Alcotest.(check bool)
    "work counter named" true
    (List.exists (fun m -> m = "nn_flowpipes increased 5 -> 6") msgs);
  (* a counter absent from the history counts 0: new work is a regression *)
  Alcotest.(check int)
    "new counter flags" 1
    (List.length (Trend.regressions ~prev (("taylor_steps", 1) :: prev)))

let test_trend_record_roundtrip () =
  let path = Filename.temp_file "dwv_trend" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let snap = [ ("cache_hits", 4); ("verifier_calls", 7) ] in
      (* first run seeds the history without failing *)
      Alcotest.(check (list string))
        "seed run clean" []
        (Trend.record ~path ~section:"hotpath" [ ("learn", snap) ]);
      (* unchanged snapshot: nothing appended, nothing flagged *)
      Alcotest.(check (list string))
        "steady state clean" []
        (Trend.record ~path ~section:"hotpath" [ ("learn", snap) ]);
      Alcotest.(check int)
        "one entry after steady state" 1
        (List.length (Trend.load path));
      (* same workload name in another section is an independent key *)
      Alcotest.(check (list string))
        "other section independent" []
        (Trend.record ~path ~section:"certs"
           [ ("learn", [ ("verifier_calls", 99) ]) ]);
      (* growth against the last committed entry flags and appends *)
      let msgs =
        Trend.record ~path ~section:"hotpath"
          [ ("learn", [ ("cache_hits", 4); ("verifier_calls", 8) ]) ]
      in
      Alcotest.(check (list string))
        "regression message" [ "[hotpath/learn] verifier_calls increased 7 -> 8" ]
        msgs;
      (* the appended entry re-baselines: the same snapshot now passes *)
      Alcotest.(check (list string))
        "accepted after append" []
        (Trend.record ~path ~section:"hotpath"
           [ ("learn", [ ("cache_hits", 4); ("verifier_calls", 8) ]) ]);
      let history = Trend.load path in
      Alcotest.(check int) "three entries total" 3 (List.length history);
      Alcotest.(check
                  (option (list (pair string int))))
        "last wins"
        (Some [ ("cache_hits", 4); ("verifier_calls", 8) ])
        (Trend.last history ~section:"hotpath" ~workload:"learn"))

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng float in [0,1)" `Quick test_rng_float_range;
    Alcotest.test_case "rng int in range" `Quick test_rng_int_range;
    Alcotest.test_case "rng int covers residues" `Quick test_rng_int_not_constant;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng uniform bounds" `Quick test_rng_uniform_bounds;
    Alcotest.test_case "rng direction unit norm" `Quick test_rng_direction_unit_norm;
    Alcotest.test_case "rng rademacher" `Quick test_rng_rademacher;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "stats mean/std" `Quick test_stats_mean_std;
    Alcotest.test_case "stats quantiles" `Quick test_stats_quantiles;
    Alcotest.test_case "stats rate" `Quick test_stats_rate;
    Alcotest.test_case "stats empty raises" `Quick test_stats_empty_raises;
    Alcotest.test_case "floatx clamp" `Quick test_floatx_clamp;
    Alcotest.test_case "floatx sigmoid" `Quick test_floatx_sigmoid;
    Alcotest.test_case "floatx linspace" `Quick test_floatx_linspace;
    Alcotest.test_case "floatx kahan" `Quick test_floatx_kahan;
    Alcotest.test_case "trend regressions" `Quick test_trend_regressions;
    Alcotest.test_case "trend record roundtrip" `Quick test_trend_record_roundtrip;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity_check;
    Alcotest.test_case "svg scene renders" `Quick test_svg_scene_renders;
    Alcotest.test_case "svg empty raises" `Quick test_svg_empty_scene_raises;
    Alcotest.test_case "svg rect validation" `Quick test_svg_rect_validation;
    Alcotest.test_case "svg file save" `Quick test_svg_file_save;
  ]
