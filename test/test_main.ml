(* Test runner: one alcotest binary aggregating every module suite. *)

let () =
  Alcotest.run "dwv"
    [
      ("util", Test_util.suite);
      ("la", Test_la.suite);
      ("interval", Test_interval.suite);
      ("expr", Test_expr.suite);
      ("poly", Test_poly.suite);
      ("taylor", Test_taylor.suite);
      ("geometry", Test_geometry.suite);
      ("ode", Test_ode.suite);
      ("nn", Test_nn.suite);
      ("transport", Test_transport.suite);
      ("reach", Test_reach.suite);
      ("core", Test_core.suite);
      ("rl", Test_rl.suite);
      ("systems", Test_systems.suite);
      ("analysis", Test_analysis.suite);
      ("ast", Test_ast.suite);
      ("typed", Test_typed.suite);
      ("sound", Test_sound.suite);
      ("integration", Test_integration.suite);
    ]
