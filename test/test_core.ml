(* Tests for dwv_core: specs, controllers, both metrics, Algorithm 1 on a
   synthetic verifier (cheap and fully controlled), Algorithm 2, and the
   Monte-Carlo evaluation. *)

module Box = Dwv_interval.Box
module I = Dwv_interval.Interval
module Mat = Dwv_la.Mat
module Expr = Dwv_expr.Expr
module Flowpipe = Dwv_reach.Flowpipe
module Verifier = Dwv_reach.Verifier
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Metrics = Dwv_core.Metrics
module Learner = Dwv_core.Learner
module Initset = Dwv_core.Initset
module Evaluate = Dwv_core.Evaluate
module Mlp = Dwv_nn.Mlp
module Activation = Dwv_nn.Activation
module Rng = Dwv_util.Rng

let box2 lo0 hi0 lo1 hi1 = Box.make ~lo:[| lo0; lo1 |] ~hi:[| hi0; hi1 |]

(* ---------------- spec ---------------- *)

let spec_fixture () =
  Spec.make ~name:"toy" ~x0:(box2 0.0 0.2 0.0 0.2) ~unsafe:(box2 0.4 0.6 0.4 0.6)
    ~goal:(box2 0.8 1.2 0.0 0.4) ~delta:0.1 ~steps:10

let test_spec_accessors () =
  let s = spec_fixture () in
  Alcotest.(check (float 1e-12)) "horizon" 1.0 (Spec.horizon s);
  Alcotest.(check int) "dim" 2 (Spec.dim s);
  Alcotest.(check bool) "safe point" true (Spec.point_safe s [| 0.0; 0.0 |]);
  Alcotest.(check bool) "unsafe point" false (Spec.point_safe s [| 0.5; 0.5 |]);
  Alcotest.(check bool) "goal point" true (Spec.point_in_goal s [| 1.0; 0.2 |])

let test_spec_validation () =
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Spec.make: all sets must share the state dimension") (fun () ->
      ignore
        (Spec.make ~name:"bad" ~x0:(box2 0.0 1.0 0.0 1.0)
           ~unsafe:(Box.make ~lo:[| 0.0 |] ~hi:[| 1.0 |])
           ~goal:(box2 0.0 1.0 0.0 1.0) ~delta:0.1 ~steps:1))

(* ---------------- controller ---------------- *)

let test_linear_controller_roundtrip () =
  let c = Controller.linear (Mat.of_rows [ [| 1.0; -2.0; 0.5 |] ]) in
  Alcotest.(check int) "params" 3 (Controller.num_params c);
  let theta = Controller.params c in
  Alcotest.(check (array (float 1e-15))) "flatten" [| 1.0; -2.0; 0.5 |] theta;
  let c2 = Controller.with_params c [| 0.0; 1.0; 0.0 |] in
  Alcotest.(check (array (float 1e-15))) "eval" [| 5.0 |] (Controller.eval c2 [| 9.0; 5.0; 1.0 |])

let test_net_controller_roundtrip () =
  let net = Mlp.create ~sizes:[ 2; 3; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] (Rng.create 0) in
  let c = Controller.net ~output_scale:2.5 net in
  let theta = Controller.params c in
  let c2 = Controller.with_params c theta in
  let x = [| 0.2; -0.4 |] in
  Alcotest.(check (array (float 1e-15))) "same outputs" (Controller.eval c x) (Controller.eval c2 x);
  Alcotest.(check (float 1e-12)) "scaling applied"
    (2.5 *. (Mlp.forward net x).(0))
    (Controller.eval c x).(0)

let test_controller_wrong_length () =
  let c = Controller.linear (Mat.of_rows [ [| 1.0; 2.0 |] ]) in
  Alcotest.check_raises "length" (Invalid_argument "Controller.with_params: wrong length")
    (fun () -> ignore (Controller.with_params c [| 1.0 |]))

let test_controller_persistence_linear () =
  let c = Controller.linear (Mat.of_rows [ [| 0.673833; -2.43385; -0.015944 |] ]) in
  let restored = Controller.of_string (Controller.to_string c) in
  Alcotest.(check (array (float 0.0))) "exact params" (Controller.params c)
    (Controller.params restored)

let test_controller_persistence_net () =
  let net = Mlp.create ~sizes:[ 2; 4; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] (Rng.create 1) in
  let c = Controller.net ~output_scale:4.0 net in
  let restored = Controller.of_string (Controller.to_string c) in
  let x = [| -0.4; 0.3 |] in
  Alcotest.(check (array (float 0.0))) "identical law" (Controller.eval c x)
    (Controller.eval restored x)

let test_controller_persistence_file () =
  let c = Controller.linear (Mat.of_rows [ [| 1.5; -0.25 |] ]) in
  let path = Filename.temp_file "dwv_ctrl" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Controller.save path c;
      Alcotest.(check (array (float 0.0))) "file roundtrip" (Controller.params c)
        (Controller.params (Controller.load path)))

let test_controller_of_string_garbage () =
  List.iter
    (fun text ->
      match Controller.of_string text with
      | _ -> Alcotest.failf "expected failure for %S" text
      | exception Failure _ -> ())
    [ ""; "controller tabular 1 1\n0\n"; "controller linear 2 2\n1 2 3\n" ]

(* ---------------- metrics ---------------- *)

let mk_pipe ?(diverged = false) boxes =
  Flowpipe.make ~step_boxes:(Array.of_list boxes)
    ~segment_boxes:(Array.of_list (List.tl boxes))
    ~delta:0.1 ~diverged

let test_geometric_d_u_branches () =
  let unsafe = box2 0.4 0.6 0.4 0.6 in
  (* clear pipe: positive distance branch *)
  let clear = mk_pipe [ box2 0.0 0.1 0.0 0.1; box2 0.1 0.2 0.0 0.1 ] in
  Alcotest.(check bool) "positive" true (Metrics.geometric_d_u ~unsafe clear > 0.0);
  (* penetrating pipe: negative volume branch *)
  let hit = mk_pipe [ box2 0.0 0.1 0.0 0.1; box2 0.45 0.55 0.45 0.55 ] in
  Alcotest.(check bool) "negative" true (Metrics.geometric_d_u ~unsafe hit < 0.0)

let test_geometric_d_u_value () =
  let unsafe = box2 2.0 3.0 0.0 1.0 in
  let pipe = mk_pipe [ box2 0.0 1.0 0.0 1.0; box2 0.5 1.0 0.0 1.0 ] in
  (* min gap = 1.0 along x, aligned in y: d = 1.0^2 *)
  Alcotest.(check (float 1e-12)) "squared distance" 1.0 (Metrics.geometric_d_u ~unsafe pipe)

let test_geometric_d_g_branches () =
  let goal = box2 0.8 1.2 0.0 0.4 in
  let hit = mk_pipe [ box2 0.0 0.1 0.0 0.1; box2 0.9 1.1 0.1 0.3 ] in
  Alcotest.(check (float 1e-12)) "overlap volume" (0.2 *. 0.2) (Metrics.geometric_d_g ~goal hit);
  let miss = mk_pipe [ box2 0.0 0.1 0.0 0.1; box2 0.2 0.3 0.0 0.1 ] in
  Alcotest.(check bool) "negative branch" true (Metrics.geometric_d_g ~goal miss < 0.0)

let test_wasserstein_scores () =
  let unsafe = box2 10.0 11.0 10.0 11.0 and goal = box2 0.9 1.1 0.9 1.1 in
  let pipe = mk_pipe [ box2 0.0 0.1 0.0 0.1; box2 0.95 1.05 0.95 1.05 ] in
  let s = Metrics.wasserstein ~unsafe ~goal pipe in
  (* final box inside the goal: containment gap exactly zero *)
  Alcotest.(check (float 1e-12)) "goal gap zero" 0.0 s.Metrics.goal;
  (* far from unsafe: saturated at the containment-gap cap *)
  let cap = Dwv_transport.Box_w2.w2_containment goal unsafe /. 2.0 in
  Alcotest.(check (float 1e-9)) "saturated" cap s.Metrics.safety

let test_wasserstein_safety_sees_giant_unsafe () =
  (* a huge unsafe region (the ACC half-space encoding): plain W2 to its
     uniform distribution is dominated by the radius mismatch and hides
     contact; the containment gap must be small for a touching segment
     and larger for a clear one *)
  let unsafe = box2 0.0 120.0 (-100.0) 200.0 and goal = box2 145.0 155.0 39.5 40.5 in
  let touching = mk_pipe [ box2 150.0 151.0 40.0 41.0; box2 119.5 120.5 40.0 41.0 ] in
  let clear = mk_pipe [ box2 150.0 151.0 40.0 41.0; box2 140.0 141.0 40.0 41.0 ] in
  let s_touch = Metrics.wasserstein ~unsafe ~goal touching in
  let s_clear = Metrics.wasserstein ~unsafe ~goal clear in
  Alcotest.(check bool) "touching scores low" true
    (s_touch.Metrics.safety < 0.2 *. s_clear.Metrics.safety)

let test_wasserstein_sees_midcourse_graze () =
  (* a pipe whose LAST box is far from X_u but which grazes it mid-course
     must score lower than a clear pipe *)
  let unsafe = box2 0.4 0.6 0.4 0.6 and goal = box2 2.0 2.2 2.0 2.2 in
  let graze = mk_pipe [ box2 0.0 0.1 0.0 0.1; box2 0.45 0.55 0.45 0.55; box2 2.0 2.2 2.0 2.2 ] in
  let clear = mk_pipe [ box2 0.0 0.1 0.0 0.1; box2 0.0 0.2 1.9 2.1; box2 2.0 2.2 2.0 2.2 ] in
  let s_graze = Metrics.wasserstein ~unsafe ~goal graze in
  let s_clear = Metrics.wasserstein ~unsafe ~goal clear in
  Alcotest.(check bool) "graze scores lower" true
    (s_graze.Metrics.safety < s_clear.Metrics.safety)

let test_diverged_scores_graded () =
  let unsafe = box2 10.0 11.0 10.0 11.0 and goal = box2 0.9 1.1 0.9 1.1 in
  let short = mk_pipe ~diverged:true [ box2 0.0 0.1 0.0 0.1; box2 0.1 0.2 0.0 0.1 ] in
  let longer =
    mk_pipe ~diverged:true
      [ box2 0.0 0.1 0.0 0.1; box2 0.1 0.2 0.0 0.1; box2 0.2 0.3 0.0 0.1 ]
  in
  let s_short = Metrics.scores Metrics.Geometric ~unsafe ~goal short in
  let s_long = Metrics.scores Metrics.Geometric ~unsafe ~goal longer in
  Alcotest.(check bool) "deep penalty" true (s_short.Metrics.safety < -1e5);
  Alcotest.(check bool) "progress rewarded" true
    (s_long.Metrics.safety > s_short.Metrics.safety)

let test_safety_cap_override () =
  let unsafe = box2 10.0 11.0 10.0 11.0 and goal = box2 0.9 1.1 0.9 1.1 in
  let pipe = mk_pipe [ box2 0.0 0.1 0.0 0.1; box2 0.95 1.05 0.95 1.05 ] in
  let s = Metrics.scores ~safety_cap:0.123 Metrics.Wasserstein ~unsafe ~goal pipe in
  Alcotest.(check (float 1e-12)) "explicit cap" 0.123 s.Metrics.safety

(* ---------------- learner on a synthetic verifier ---------------- *)

(* Synthetic problem: theta in R^2 places the endpoint of a straight-line
   "trajectory" of small boxes from the origin. Goal sits at (1.0, 0.2),
   the unsafe box at (0.5, 0.5); learning must move theta from near the
   origin into the goal. One verifier call is microseconds, so the
   learner's mechanics can be tested exhaustively. *)
let synthetic_spec =
  Spec.make ~name:"synthetic" ~x0:(box2 (-0.02) 0.02 (-0.02) 0.02)
    ~unsafe:(box2 0.4 0.6 0.4 0.6) ~goal:(box2 0.9 1.1 0.1 0.3) ~delta:0.1 ~steps:10

let synthetic_verify controller =
  let theta = Controller.params controller in
  let segments = 10 in
  let boxes =
    List.init (segments + 1) (fun k ->
        let t = float_of_int k /. float_of_int segments in
        let cx = t *. theta.(0) and cy = t *. theta.(1) in
        box2 (cx -. 0.02) (cx +. 0.02) (cy -. 0.02) (cy +. 0.02))
  in
  Flowpipe.make ~step_boxes:(Array.of_list boxes)
    ~segment_boxes:(Array.of_list (List.tl boxes))
    ~delta:0.1 ~diverged:false

let synthetic_init = Controller.linear (Mat.of_rows [ [| 0.05; 0.05 |] ])

let test_learner_converges_geometric () =
  let cfg = { Learner.default_config with max_iters = 300; alpha = 0.05; beta = 0.05 } in
  let r =
    Learner.learn cfg ~metric:Metrics.Geometric ~spec:synthetic_spec ~verify:synthetic_verify
      ~init:synthetic_init
  in
  Alcotest.(check bool) "verified" true (r.Learner.verdict = Verifier.Reach_avoid);
  let theta = Controller.params r.Learner.controller in
  Alcotest.(check bool) "theta in goal region" true
    (theta.(0) > 0.9 && theta.(0) < 1.1 && theta.(1) > 0.1 && theta.(1) < 0.3)

let test_learner_converges_wasserstein () =
  let cfg = { Learner.default_config with max_iters = 400; alpha = 0.05; beta = 0.05 } in
  let r =
    Learner.learn cfg ~metric:Metrics.Wasserstein ~spec:synthetic_spec
      ~verify:synthetic_verify ~init:synthetic_init
  in
  Alcotest.(check bool) "verified" true (r.Learner.verdict = Verifier.Reach_avoid)

let test_learner_spsa_mode () =
  let cfg =
    { Learner.default_config with
      max_iters = 600; alpha = 0.04; beta = 0.04; gradient_mode = Learner.Spsa 3; seed = 1 }
  in
  let r =
    Learner.learn cfg ~metric:Metrics.Geometric ~spec:synthetic_spec ~verify:synthetic_verify
      ~init:synthetic_init
  in
  Alcotest.(check bool) "verified" true (r.Learner.verdict = Verifier.Reach_avoid)

let test_learner_stops_immediately_when_verified () =
  let init = Controller.linear (Mat.of_rows [ [| 1.0; 0.2 |] ]) in
  let cfg = { Learner.default_config with max_iters = 50 } in
  let r =
    Learner.learn cfg ~metric:Metrics.Geometric ~spec:synthetic_spec ~verify:synthetic_verify
      ~init
  in
  Alcotest.(check int) "CI = 0" 0 r.Learner.iterations;
  Alcotest.(check int) "single call" 1 r.Learner.verifier_calls

let test_learner_respects_budget () =
  (* an unreachable goal: the learner must stop at max_iters *)
  let hopeless =
    Spec.make ~name:"hopeless" ~x0:(box2 (-0.02) 0.02 (-0.02) 0.02)
      ~unsafe:(box2 40.0 60.0 40.0 60.0) ~goal:(box2 90.0 91.0 90.0 91.0) ~delta:0.1 ~steps:10
  in
  let cfg = { Learner.default_config with max_iters = 7; alpha = 1e-4; beta = 1e-4 } in
  let r =
    Learner.learn cfg ~metric:Metrics.Geometric ~spec:hopeless ~verify:synthetic_verify
      ~init:synthetic_init
  in
  Alcotest.(check int) "stopped at budget" 7 r.Learner.iterations;
  Alcotest.(check bool) "not verified" true (r.Learner.verdict <> Verifier.Reach_avoid)

let test_learner_history_monotone_iters () =
  let cfg = { Learner.default_config with max_iters = 20; alpha = 0.02; beta = 0.02 } in
  let r =
    Learner.learn cfg ~metric:Metrics.Geometric ~spec:synthetic_spec ~verify:synthetic_verify
      ~init:synthetic_init
  in
  let iters = List.map (fun (h : Learner.history_point) -> h.Learner.iter) r.Learner.history in
  Alcotest.(check (list int)) "contiguous" (List.init (List.length iters) Fun.id) iters

(* ---------------- initset (Algorithm 2) ---------------- *)

(* Toy verifier for cells: the flow translates a cell by (+1, 0). Only
   cells starting with x in [0, 0.5] land inside the goal box. *)
let initset_verify cell =
  let moved = Box.translate [| 1.0; 0.0 |] cell in
  Flowpipe.make ~step_boxes:[| cell; moved |] ~segment_boxes:[| Box.hull cell moved |]
    ~delta:0.1 ~diverged:false

let test_initset_partial_coverage () =
  let x0 = box2 0.0 1.0 0.0 1.0 in
  (* [Box.translate] widens outward, so a goal whose boundary coincides
     exactly with a translated cell edge is (soundly) unprovable; test
     against the open cover instead *)
  let goal = Box.bloat 1e-9 (box2 1.0 1.5 0.0 1.0) in
  let r = Initset.search ~max_depth:4 ~verify:initset_verify ~goal ~x0 () in
  Alcotest.(check bool) "coverage close to half" true
    (r.Initset.coverage > 0.4 && r.Initset.coverage < 0.6);
  (* verified cells truly map into the goal *)
  List.iter
    (fun cell ->
      Alcotest.(check bool) "cell maps into goal" true
        (Box.subset (Box.translate [| 1.0; 0.0 |] cell) goal))
    r.Initset.verified

let test_initset_full_coverage () =
  let x0 = box2 0.2 0.4 0.2 0.4 in
  let goal = box2 1.0 1.6 0.0 1.0 in
  let r = Initset.search ~verify:initset_verify ~goal ~x0 () in
  Alcotest.(check (float 1e-9)) "full" 1.0 r.Initset.coverage;
  Alcotest.(check int) "single call" 1 r.Initset.verifier_calls

let test_initset_even_matches_adaptive () =
  (* the paper's even-partition scheme and the adaptive bisection must
     certify (approximately) the same region - even partition at round r
     equals bisection depth 2r in 2-D, so compare coverages *)
  let x0 = box2 0.0 1.0 0.0 1.0 in
  let goal = Box.bloat 1e-9 (box2 1.0 1.5 0.0 1.0) in
  let adaptive = Initset.search ~max_depth:6 ~verify:initset_verify ~goal ~x0 () in
  let even = Initset.search_even ~max_rounds:4 ~verify:initset_verify ~goal ~x0 () in
  Alcotest.(check bool) "coverage agrees within a grid cell" true
    (Float.abs (adaptive.Initset.coverage -. even.Initset.coverage) < 0.15);
  (* every even-scheme cell is genuinely certified *)
  List.iter
    (fun cell ->
      Alcotest.(check bool) "cell maps into goal" true
        (Box.subset (Box.translate [| 1.0; 0.0 |] cell) goal))
    even.Initset.verified

let test_initset_even_full_coverage () =
  let x0 = box2 0.2 0.4 0.2 0.4 in
  let goal = box2 1.0 1.6 0.0 1.0 in
  let r = Initset.search_even ~verify:initset_verify ~goal ~x0 () in
  Alcotest.(check (float 1e-9)) "full" 1.0 r.Initset.coverage

let test_initset_empty () =
  let x0 = box2 5.0 6.0 5.0 6.0 in
  let goal = box2 0.0 1.0 0.0 1.0 in
  let r = Initset.search ~max_depth:2 ~verify:initset_verify ~goal ~x0 () in
  Alcotest.(check (float 1e-9)) "nothing certified" 0.0 r.Initset.coverage;
  Alcotest.(check bool) "rejected cells recorded" true (List.length r.Initset.rejected > 0)

(* ---------------- falsification ---------------- *)

module Falsifier = Dwv_core.Falsifier

let test_signed_distance () =
  let b = box2 0.0 2.0 0.0 2.0 in
  Alcotest.(check (float 1e-12)) "inside depth" (-0.5) (Falsifier.signed_distance b [| 0.5; 1.0 |]);
  Alcotest.(check (float 1e-12)) "outside gap" 1.0 (Falsifier.signed_distance b [| 3.0; 1.0 |]);
  Alcotest.(check (float 1e-12)) "boundary" 0.0 (Falsifier.signed_distance b [| 0.0; 1.0 |])

let fals_spec =
  Spec.make ~name:"fals" ~x0:(Box.make ~lo:[| 0.5 |] ~hi:[| 1.5 |])
    ~unsafe:(Box.make ~lo:[| 3.0 |] ~hi:[| 4.0 |])
    ~goal:(Box.make ~lo:[| -0.1 |] ~hi:[| 0.1 |])
    ~delta:0.2 ~steps:30

let fals_sys = Dwv_ode.Sampled_system.make ~f:[| Expr.input 0 |] ~n:1 ~m:1 ~delta:0.2

let test_falsifier_finds_unsafe_controller () =
  (* only the largest initial states drive into the unsafe band: u = +x
     grows exponentially; from x0 = 1.5 it certainly passes 3.0 *)
  let controller x = [| x.(0) |] in
  let rng = Rng.create 4 in
  match
    Falsifier.search ~rng ~sys:fals_sys ~controller ~spec:fals_spec
      ~property:Falsifier.Safety ()
  with
  | None -> Alcotest.fail "expected a safety counterexample"
  | Some c ->
    Alcotest.(check bool) "negative robustness" true (c.Falsifier.robustness <= 0.0);
    (* the witness must actually reproduce the violation *)
    let r =
      Falsifier.robustness ~sys:fals_sys ~controller ~spec:fals_spec
        ~property:Falsifier.Safety c.Falsifier.x0
    in
    Alcotest.(check bool) "witness reproduces" true (r <= 0.0)

let test_falsifier_accepts_safe_controller () =
  let controller x = [| -.x.(0) |] in
  let rng = Rng.create 5 in
  Alcotest.(check bool) "no counterexample" true
    (Falsifier.search ~attempts:30 ~rng ~sys:fals_sys ~controller ~spec:fals_spec
       ~property:Falsifier.Safety ()
    = None)

let test_falsifier_goal_reaching () =
  (* u = 0 never reaches the goal: goal-reaching falsified everywhere *)
  let controller _ = [| 0.0 |] in
  let rng = Rng.create 6 in
  (match
     Falsifier.search ~rng ~sys:fals_sys ~controller ~spec:fals_spec
       ~property:Falsifier.Goal_reaching ()
   with
  | None -> Alcotest.fail "expected a goal-reaching counterexample"
  | Some c -> Alcotest.(check bool) "negative" true (c.Falsifier.robustness <= 0.0));
  (* the stabilizing law reaches the goal: no counterexample *)
  let good x = [| -.x.(0) |] in
  Alcotest.(check bool) "stabilizer reaches" true
    (Falsifier.search ~attempts:30 ~rng ~sys:fals_sys ~controller:good ~spec:fals_spec
       ~property:Falsifier.Goal_reaching ()
    = None)

(* ---------------- evaluation ---------------- *)

let eval_spec =
  Spec.make ~name:"eval" ~x0:(Box.make ~lo:[| 0.5 |] ~hi:[| 1.0 |])
    ~unsafe:(Box.make ~lo:[| 2.0 |] ~hi:[| 3.0 |])
    ~goal:(Box.make ~lo:[| -0.05 |] ~hi:[| 0.05 |])
    ~delta:0.2 ~steps:40

let eval_sys =
  Dwv_ode.Sampled_system.make ~f:[| Expr.input 0 |] ~n:1 ~m:1 ~delta:0.2

let test_evaluate_stabilizing () =
  let controller x = [| -.x.(0) |] in
  let rng = Rng.create 2 in
  let r = Evaluate.rates ~n:100 ~rng ~sys:eval_sys ~controller ~spec:eval_spec () in
  Alcotest.(check (float 1e-9)) "SC 100" 100.0 r.Evaluate.safe_percent;
  Alcotest.(check (float 1e-9)) "GR 100" 100.0 r.Evaluate.goal_percent

let test_evaluate_unsafe_controller () =
  (* drive upward into the unsafe band *)
  let controller _ = [| 1.0 |] in
  let rng = Rng.create 3 in
  let r = Evaluate.rates ~n:50 ~rng ~sys:eval_sys ~controller ~spec:eval_spec () in
  Alcotest.(check (float 1e-9)) "SC 0" 0.0 r.Evaluate.safe_percent;
  (match Evaluate.find_unsafe_rollout ~n:50 ~rng ~sys:eval_sys ~controller ~spec:eval_spec () with
  | Some _ -> ()
  | None -> Alcotest.fail "expected an unsafe rollout")

let test_evaluate_rollout_fields () =
  let controller x = [| -.x.(0) |] in
  let r = Evaluate.rollout ~sys:eval_sys ~controller ~spec:eval_spec [| 0.7 |] in
  Alcotest.(check bool) "safe" true r.Evaluate.safe;
  Alcotest.(check bool) "reached" true r.Evaluate.reached

(* ---------------- spec serialization ---------------- *)

let nasty_floats =
  [| 0.1; -0.0; 1e-300; 4e-324; Float.pi; 1.0 +. epsilon_float; 1e17;
     0x1.fffffffffffffp+2; 123.456789012345678 |]

let test_spec_roundtrip_nasty () =
  (* endpoints chosen to defeat any decimal pretty-printer rounding: the
     hex bit-pattern serialization must reproduce them bit-for-bit *)
  let n = Array.length nasty_floats in
  for i = 0 to n - 1 do
    let a = nasty_floats.(i) and b = nasty_floats.((i + 1) mod n) in
    let lo = Float.min a b and hi = Float.max a b in
    let box = Box.make ~lo:[| lo |] ~hi:[| hi |] in
    let spec =
      Spec.make ~name:(Fmt.str "nasty-%d" i) ~x0:box ~unsafe:box ~goal:box
        ~delta:(Float.max 1e-9 (Float.abs a)) ~steps:(1 + i)
    in
    let back = Spec.of_string (Spec.to_string spec) in
    let bits f = Int64.bits_of_float f in
    let box_bits b = (Array.map bits (Box.lo b), Array.map bits (Box.hi b)) in
    Alcotest.(check bool)
      "round-trips bit-for-bit" true
      (back.Spec.name = spec.Spec.name
      && back.Spec.steps = spec.Spec.steps
      && bits back.Spec.delta = bits spec.Spec.delta
      && box_bits back.Spec.x0 = box_bits spec.Spec.x0
      && box_bits back.Spec.unsafe = box_bits spec.Spec.unsafe
      && box_bits back.Spec.goal = box_bits spec.Spec.goal)
  done

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"spec to_string/of_string round-trips" ~count:200
    QCheck.(triple (pair float float) (pair float float) (int_range 1 50))
    (fun ((a, b), (c, d), steps) ->
      QCheck.assume
        (Float.is_finite a && Float.is_finite b && Float.is_finite c
       && Float.is_finite d);
      let lo1 = Float.min a b and hi1 = Float.max a b in
      let lo2 = Float.min c d and hi2 = Float.max c d in
      let x0 = Box.make ~lo:[| lo1; lo2 |] ~hi:[| hi1; hi2 |] in
      let spec =
        Spec.make ~name:"prop" ~x0 ~unsafe:x0 ~goal:x0 ~delta:0.125 ~steps
      in
      let back = Spec.of_string (Spec.to_string spec) in
      let bits f = Int64.bits_of_float f in
      Array.for_all2
        (fun x y -> bits x = bits y)
        (Box.lo back.Spec.x0) (Box.lo spec.Spec.x0)
      && Array.for_all2
           (fun x y -> bits x = bits y)
           (Box.hi back.Spec.x0) (Box.hi spec.Spec.x0)
      && back.Spec.steps = spec.Spec.steps)

let test_spec_of_string_garbage () =
  List.iter
    (fun s ->
      match Spec.of_string s with
      | exception Failure _ -> ()
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail ("accepted garbage: " ^ s))
    [ ""; "spec v9"; "spec v1\nname x"; "not a spec at all" ]

let test_spec_zero_steps_rejected () =
  let b = Box.make ~lo:[| 0.0 |] ~hi:[| 1.0 |] in
  Alcotest.check_raises "zero steps"
    (Invalid_argument "Spec.make: need at least one step") (fun () ->
      ignore (Spec.make ~name:"z" ~x0:b ~unsafe:b ~goal:b ~delta:0.1 ~steps:0))

(* ---------------- falsifier: multi-box avoid + refine ---------------- *)

let test_falsifier_multibox_avoid () =
  (* u = +x grows only to ~2.7 from the largest x0 over this horizon: the
     spec's unsafe band [30,40] is unreachable, but the extra avoid box
     [2.5,2.8] on the way up is — only the multi-box search may find it *)
  let short =
    Spec.make ~name:"multibox" ~x0:fals_spec.Spec.x0
      ~unsafe:(Box.make ~lo:[| 30.0 |] ~hi:[| 40.0 |])
      ~goal:fals_spec.Spec.goal ~delta:0.2 ~steps:3
  in
  let controller x = [| x.(0) |] in
  let extra = Box.make ~lo:[| 2.5 |] ~hi:[| 2.8 |] in
  Alcotest.(check bool)
    "single unsafe box: no counterexample" true
    (Falsifier.search ~attempts:30 ~rng:(Rng.create 7) ~sys:fals_sys
       ~controller ~spec:short ~property:Falsifier.Safety ()
    = None);
  match
    Falsifier.search ~attempts:30
      ~avoid:[ short.Spec.unsafe; extra ]
      ~rng:(Rng.create 7) ~sys:fals_sys ~controller ~spec:short
      ~property:Falsifier.Safety ()
  with
  | None -> Alcotest.fail "expected a counterexample against the avoid set"
  | Some c ->
    let r =
      Falsifier.robustness
        ~avoid:[ short.Spec.unsafe; extra ]
        ~sys:fals_sys ~controller ~spec:short ~property:Falsifier.Safety
        c.Falsifier.x0
    in
    Alcotest.(check bool) "witness reproduces on the avoid set" true (r <= 0.0)

let test_falsifier_refine_descends () =
  (* hill climbing from the center must not increase robustness, must
     stay inside X0, and must find the violating corner here *)
  let controller x = [| x.(0) |] in
  let start = Box.center fals_spec.Spec.x0 in
  let r0 =
    Falsifier.robustness ~sys:fals_sys ~controller ~spec:fals_spec
      ~property:Falsifier.Safety start
  in
  let x, r =
    Falsifier.refine ~sys:fals_sys ~controller ~spec:fals_spec
      ~property:Falsifier.Safety ~iters:8 start
  in
  Alcotest.(check bool) "robustness non-increasing" true (r <= r0);
  Alcotest.(check bool) "stays in X0" true (Box.contains fals_spec.Spec.x0 x);
  Alcotest.(check bool) "finds the violation" true (r <= 0.0)

let test_falsifier_goal_boundary_not_falsified () =
  (* closed-box semantics: a trajectory that reaches the goal face with
     robustness exactly 0 has reached the goal — Goal_reaching must not
     report it as falsified (regression for the fuzzer's grazing bug) *)
  let spec =
    Spec.make ~name:"graze" ~x0:(Box.make ~lo:[| 1.0 |] ~hi:[| 1.0 |])
      ~unsafe:(Box.make ~lo:[| 30.0 |] ~hi:[| 40.0 |])
      ~goal:(Box.make ~lo:[| 0.0 |] ~hi:[| 1.0 |])
      ~delta:0.2 ~steps:2
  in
  (* u = 0 holds x at 1.0: exactly on the goal's upper face, robustness 0 *)
  let controller _ = [| 0.0 |] in
  Alcotest.(check (float 1e-12))
    "grazing robustness is exactly 0" 0.0
    (Falsifier.robustness ~sys:fals_sys ~controller ~spec
       ~property:Falsifier.Goal_reaching [| 1.0 |]);
  Alcotest.(check bool)
    "not declared falsified" true
    (Falsifier.search ~attempts:10 ~rng:(Rng.create 8) ~sys:fals_sys
       ~controller ~spec ~property:Falsifier.Goal_reaching ()
    = None)

(* ---------------- evaluate: edge cases ---------------- *)

let test_evaluate_point_x0 () =
  (* a degenerate (point) initial box: sampling and rollouts must work *)
  let spec =
    Spec.make ~name:"point" ~x0:(Box.make ~lo:[| 0.7 |] ~hi:[| 0.7 |])
      ~unsafe:eval_spec.Spec.unsafe ~goal:eval_spec.Spec.goal ~delta:0.2
      ~steps:40
  in
  let controller x = [| -.x.(0) |] in
  let r = Evaluate.rates ~n:20 ~rng:(Rng.create 9) ~sys:eval_sys ~controller ~spec () in
  Alcotest.(check (float 1e-9)) "SC 100" 100.0 r.Evaluate.safe_percent;
  Alcotest.(check (float 1e-9)) "GR 100" 100.0 r.Evaluate.goal_percent

let test_evaluate_nan_dynamics_conservative () =
  (* NaN compares false against every box bound, so a naive membership
     test would count a blown-up trajectory as safe; the rollout must
     classify it unsafe and not-reaching, and must not crash *)
  let sys =
    Dwv_ode.Sampled_system.make ~f:[| Expr.const Float.nan |] ~n:1 ~m:1
      ~delta:0.2
  in
  let controller _ = [| 0.0 |] in
  let r = Evaluate.rollout ~sys ~controller ~spec:eval_spec [| 0.7 |] in
  Alcotest.(check bool) "NaN trace is unsafe" false r.Evaluate.safe;
  Alcotest.(check bool) "NaN trace never reaches" false r.Evaluate.reached

let test_evaluate_multibox_avoid () =
  (* the extra avoid box sits on the stabilizing trajectory: with ~avoid
     the rollout is unsafe, without it the same rollout is safe *)
  let controller x = [| -.x.(0) |] in
  let extra = Box.make ~lo:[| 0.3 |] ~hi:[| 0.4 |] in
  let plain = Evaluate.rollout ~sys:eval_sys ~controller ~spec:eval_spec [| 0.7 |] in
  let multi =
    Evaluate.rollout
      ~avoid:[ eval_spec.Spec.unsafe; extra ]
      ~sys:eval_sys ~controller ~spec:eval_spec [| 0.7 |]
  in
  Alcotest.(check bool) "safe without the extra box" true plain.Evaluate.safe;
  Alcotest.(check bool) "unsafe against the avoid set" false multi.Evaluate.safe

let suite =
  [
    Alcotest.test_case "spec accessors" `Quick test_spec_accessors;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "linear controller" `Quick test_linear_controller_roundtrip;
    Alcotest.test_case "net controller" `Quick test_net_controller_roundtrip;
    Alcotest.test_case "controller wrong length" `Quick test_controller_wrong_length;
    Alcotest.test_case "controller persist linear" `Quick test_controller_persistence_linear;
    Alcotest.test_case "controller persist net" `Quick test_controller_persistence_net;
    Alcotest.test_case "controller persist file" `Quick test_controller_persistence_file;
    Alcotest.test_case "controller reject garbage" `Quick test_controller_of_string_garbage;
    Alcotest.test_case "geometric d_u branches" `Quick test_geometric_d_u_branches;
    Alcotest.test_case "geometric d_u value" `Quick test_geometric_d_u_value;
    Alcotest.test_case "geometric d_g branches" `Quick test_geometric_d_g_branches;
    Alcotest.test_case "wasserstein scores" `Quick test_wasserstein_scores;
    Alcotest.test_case "wasserstein giant unsafe" `Quick test_wasserstein_safety_sees_giant_unsafe;
    Alcotest.test_case "wasserstein graze" `Quick test_wasserstein_sees_midcourse_graze;
    Alcotest.test_case "diverged scores" `Quick test_diverged_scores_graded;
    Alcotest.test_case "safety cap override" `Quick test_safety_cap_override;
    Alcotest.test_case "learner geometric" `Quick test_learner_converges_geometric;
    Alcotest.test_case "learner wasserstein" `Quick test_learner_converges_wasserstein;
    Alcotest.test_case "learner spsa" `Quick test_learner_spsa_mode;
    Alcotest.test_case "learner early stop" `Quick test_learner_stops_immediately_when_verified;
    Alcotest.test_case "learner budget" `Quick test_learner_respects_budget;
    Alcotest.test_case "learner history" `Quick test_learner_history_monotone_iters;
    Alcotest.test_case "initset half coverage" `Quick test_initset_partial_coverage;
    Alcotest.test_case "initset full coverage" `Quick test_initset_full_coverage;
    Alcotest.test_case "initset even vs adaptive" `Quick test_initset_even_matches_adaptive;
    Alcotest.test_case "initset even full" `Quick test_initset_even_full_coverage;
    Alcotest.test_case "initset empty" `Quick test_initset_empty;
    Alcotest.test_case "falsifier signed distance" `Quick test_signed_distance;
    Alcotest.test_case "falsifier finds unsafe" `Quick test_falsifier_finds_unsafe_controller;
    Alcotest.test_case "falsifier accepts safe" `Quick test_falsifier_accepts_safe_controller;
    Alcotest.test_case "falsifier goal-reaching" `Quick test_falsifier_goal_reaching;
    Alcotest.test_case "evaluate stabilizing" `Quick test_evaluate_stabilizing;
    Alcotest.test_case "evaluate unsafe" `Quick test_evaluate_unsafe_controller;
    Alcotest.test_case "evaluate rollout" `Quick test_evaluate_rollout_fields;
    Alcotest.test_case "spec round-trip nasty floats" `Quick test_spec_roundtrip_nasty;
    QCheck_alcotest.to_alcotest prop_spec_roundtrip;
    Alcotest.test_case "spec of_string garbage" `Quick test_spec_of_string_garbage;
    Alcotest.test_case "spec zero steps" `Quick test_spec_zero_steps_rejected;
    Alcotest.test_case "falsifier multi-box avoid" `Quick test_falsifier_multibox_avoid;
    Alcotest.test_case "falsifier refine descends" `Quick test_falsifier_refine_descends;
    Alcotest.test_case "falsifier goal boundary" `Quick test_falsifier_goal_boundary_not_falsified;
    Alcotest.test_case "evaluate point x0" `Quick test_evaluate_point_x0;
    Alcotest.test_case "evaluate NaN dynamics" `Quick test_evaluate_nan_dynamics_conservative;
    Alcotest.test_case "evaluate multi-box avoid" `Quick test_evaluate_multibox_avoid;
  ]
