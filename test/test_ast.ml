(* Tests for the layer-3 AST analyses: the parse front end, the
   module-inventory index, the domain-safety and exception-escape
   analyses over the fixture corpus in fixtures/analysis/, the migrated
   layer-2 rules on both engines, the differential mode, and the
   satellite fixes (allowlist component matching, tree-walk dedupe,
   JSON report envelope). *)

module D = Dwv_analysis.Diagnostics
module Src_ast = Dwv_analysis.Src_ast
module Ast_index = Dwv_analysis.Ast_index
module Ast_lint = Dwv_analysis.Ast_lint
module Ast_rules = Dwv_analysis.Ast_rules
module Domain_safety = Dwv_analysis.Domain_safety
module Exn_escape = Dwv_analysis.Exn_escape
module Source_lint = Dwv_analysis.Source_lint
module Source_rules = Dwv_analysis.Source_rules
module Registry = Dwv_analysis.Registry

let corpus = "fixtures/analysis"
let fixture name = Filename.concat corpus name

let has ~check ds = List.exists (fun (d : D.t) -> d.D.check = check) ds

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let count ~check ds =
  List.length (List.filter (fun (d : D.t) -> d.D.check = check) ds)

let severity_of ~check ds =
  match List.find_opt (fun (d : D.t) -> d.D.check = check) ds with
  | Some d -> Some d.D.severity
  | None -> None

let parse_fixture name =
  match Src_ast.parse_file (fixture name) with
  | Ok p -> p
  | Error m -> Alcotest.failf "fixture %s does not parse: %s" name m

let index_of names = Ast_index.of_files (List.map parse_fixture names)

(* ---------------- Src_ast ---------------- *)

let test_parse_ok () =
  let p = parse_fixture "ds_bad_memo.ml" in
  Alcotest.(check string) "module name" "Ds_bad_memo"
    (Src_ast.module_of_path p.Src_ast.path);
  Alcotest.(check bool) "non-empty structure" true (p.Src_ast.ast <> [])

let test_parse_error () =
  match Src_ast.parse_file (fixture "broken_syntax.ml") with
  | Ok _ -> Alcotest.fail "broken_syntax.ml must not parse"
  | Error msg -> Alcotest.(check bool) "mentions syntax" true
                   (contains ~sub:"syntax" msg)

(* ---------------- Ast_index ---------------- *)

let test_index_inventory () =
  let mi = Ast_index.of_parsed (parse_fixture "ds_good_memo.ml") in
  let guard name =
    match Ast_index.find_mutable mi name with
    | Some m -> m.Ast_index.m_guard
    | None -> Alcotest.failf "binding %s not in inventory" name
  in
  Alcotest.(check bool) "memo unguarded" true (guard "memo" = Ast_index.Unguarded);
  Alcotest.(check bool) "mutex is a sync primitive" true
    (guard "memo_mu" = Ast_index.Sync_primitive);
  Alcotest.(check bool) "atomic counter guarded" true
    (guard "hits" = Ast_index.Atomic_guarded);
  Alcotest.(check int) "one fan-out site" 1 (List.length mi.Ast_index.pool_sites);
  let site = List.hd mi.Ast_index.pool_sites in
  Alcotest.(check string) "site callee" "Pool.map" site.Ast_index.p_callee;
  Alcotest.(check string) "enclosing function" "run" site.Ast_index.p_fn;
  match Ast_index.find_fn mi "lookup" with
  | Some f -> Alcotest.(check bool) "lookup locks" true f.Ast_index.uses_mutex
  | None -> Alcotest.fail "lookup not indexed"

(* ---------------- domain-safety ---------------- *)

let test_domain_safety_fires () =
  let ds = Domain_safety.analyze (index_of [ "ds_bad_memo.ml" ]) in
  Alcotest.(check int) "one finding" 1 (count ~check:Registry.domain_safety ds);
  let d = List.hd ds in
  Alcotest.(check bool) "error severity" true (d.D.severity = D.Error);
  Alcotest.(check bool) "names the table" true
    (contains ~sub:"'memo'" d.D.message);
  Alcotest.(check bool) "shows the path" true
    (contains ~sub:"Ds_bad_memo.lookup" d.D.message)

let test_domain_safety_silent_when_guarded () =
  Alcotest.(check int) "no findings" 0
    (List.length (Domain_safety.analyze (index_of [ "ds_good_memo.ml" ])))

let test_index_records_dls_init_idents () =
  let mi = Ast_index.of_parsed (parse_fixture "ds_bad_dls.ml") in
  match Ast_index.find_mutable mi "memo_key" with
  | Some m ->
    Alcotest.(check bool) "dls guarded" true
      (m.Ast_index.m_guard = Ast_index.Dls_guarded);
    Alcotest.(check bool) "initializer idents captured" true
      (Ast_index.SSet.mem "shared" m.Ast_index.m_init_idents)
  | None -> Alcotest.fail "memo_key not in inventory"

let test_domain_safety_dls_counterfeit_fires () =
  let ds = Domain_safety.analyze (index_of [ "ds_bad_dls.ml" ]) in
  Alcotest.(check int) "one finding" 1 (count ~check:Registry.domain_safety ds);
  let d = List.hd ds in
  Alcotest.(check bool) "error severity" true (d.D.severity = D.Error);
  Alcotest.(check bool) "names the shared table" true
    (contains ~sub:"'shared'" d.D.message);
  Alcotest.(check bool) "provenance goes through the key initializer" true
    (contains ~sub:"memo_key[init]" d.D.message)

let test_domain_safety_silent_on_fresh_dls () =
  Alcotest.(check int) "no findings" 0
    (List.length (Domain_safety.analyze (index_of [ "ds_good_dls.ml" ])))

(* ---------------- exn-escape ---------------- *)

let test_exn_escape_fires () =
  let ds =
    Exn_escape.analyze ~hot_modules:[ "Exn_bad" ] (index_of [ "exn_bad.ml" ])
  in
  let of_fn name =
    List.filter
      (fun (d : D.t) -> contains ~sub:("'" ^ name ^ "'") d.D.message)
      ds
  in
  Alcotest.(check bool) "direct failwith is an error" true
    (List.exists (fun (d : D.t) -> d.D.severity = D.Error) (of_fn "step"));
  Alcotest.(check bool) "one-hop caller is a warning" true
    (List.exists (fun (d : D.t) -> d.D.severity = D.Warn) (of_fn "total"));
  Alcotest.(check bool) "invalid_arg is a note" true
    (List.exists (fun (d : D.t) -> d.D.severity = D.Info) (of_fn "check_dim"))

let test_exn_escape_silent_when_handled () =
  Alcotest.(check int) "result-speaking + try-handled module is silent" 0
    (List.length
       (Exn_escape.analyze ~hot_modules:[ "Exn_good" ] (index_of [ "exn_good.ml" ])))

let test_exn_escape_ignores_cold_modules () =
  (* default hot list does not contain the fixture module *)
  Alcotest.(check int) "cold module is silent" 0
    (List.length (Exn_escape.analyze (index_of [ "exn_bad.ml" ])))

(* ---------------- migrated layer-2 rules, both engines ---------------- *)

let engines = [ Ast_lint.Regex; Ast_lint.Ast ]

let rule_pair ~check ~bad ~good ~bad_hits () =
  List.iter
    (fun engine ->
      let label s = Fmt.str "%s/%s" (Ast_lint.engine_label engine) s in
      let ds_bad = Ast_lint.lint_files ~engine [ fixture bad ] in
      let ds_good = Ast_lint.lint_files ~engine [ fixture good ] in
      Alcotest.(check bool) (label "fires on bad") true (has ~check ds_bad);
      Alcotest.(check int) (label "silent on good") 0 (count ~check ds_good);
      (* the AST engine sees every occurrence, regex one per line; the
         fixtures put one occurrence per line so the counts agree *)
      Alcotest.(check int) (label "hit count") bad_hits (count ~check ds_bad))
    engines

let test_phys_equality =
  rule_pair ~check:"phys-equality" ~bad:"phys_eq_bad.ml" ~good:"phys_eq_good.ml"
    ~bad_hits:2

let test_nan_compare =
  rule_pair ~check:"nan-compare" ~bad:"nan_cmp_bad.ml" ~good:"nan_cmp_good.ml"
    ~bad_hits:2

let test_poly_compare =
  rule_pair ~check:"poly-compare" ~bad:"poly_cmp_bad.ml" ~good:"poly_cmp_good.ml"
    ~bad_hits:1

let test_float_of_string =
  rule_pair ~check:"float-of-string" ~bad:"fos_bad.ml" ~good:"fos_good.ml" ~bad_hits:1

let test_poly_compare_severity () =
  let ds = Ast_lint.lint_files ~engine:Ast_lint.Ast [ fixture "poly_cmp_bad.ml" ] in
  Alcotest.(check bool) "warn, not error" true
    (severity_of ~check:"poly-compare" ds = Some D.Warn)

(* ---------------- fallback and differential ---------------- *)

let test_ast_parse_fallback () =
  let ds = Ast_lint.lint_files ~engine:Ast_lint.Ast [ fixture "broken_syntax.ml" ] in
  Alcotest.(check int) "one ast-parse note" 1 (count ~check:Registry.ast_parse ds);
  Alcotest.(check bool) "note severity" true
    (severity_of ~check:Registry.ast_parse ds = Some D.Info)

let test_differential_agrees_on_corpus () =
  let ds =
    Ast_lint.lint_tree ~exclude:[ "diff_demo.ml" ] ~engine:Ast_lint.Both [ corpus ]
  in
  Alcotest.(check int) "no disagreements" 0 (count ~check:Registry.engine_diff ds)

let test_differential_detects_blind_spot () =
  let ds = Ast_lint.lint_files ~engine:Ast_lint.Both [ fixture "diff_demo.ml" ] in
  Alcotest.(check bool) "Stdlib-qualified float_of_string disagrees" true
    (has ~check:Registry.engine_diff ds);
  Alcotest.(check bool) "and the ast engine still reports the rule" true
    (has ~check:"float-of-string" ds)

let test_registry_lists_ast_checks () =
  let names = List.map (fun (e : Registry.entry) -> e.Registry.name) Registry.all in
  List.iter
    (fun n -> Alcotest.(check bool) n true (List.mem n names))
    [ Registry.domain_safety; Registry.exn_escape; Registry.ast_parse;
      Registry.engine_diff ]

(* ---------------- satellite: allowlist component matching ---------------- *)

let rule_with_allow allow =
  {
    Source_rules.name = "fix";
    severity = D.Error;
    pattern = "unused";
    message = "unused";
    hint = None;
    allow;
  }

let test_allowed_components () =
  let file_rule = rule_with_allow [ "lib/expr/expr.ml" ] in
  let dir_rule = rule_with_allow [ "bin/" ] in
  let checks =
    [
      (file_rule, "lib/expr/expr.ml", true, "exact path");
      (file_rule, "./lib/expr/expr.ml", true, "leading ./");
      (file_rule, "repo/lib/expr/expr.ml", true, "nested under a prefix");
      (file_rule, "lib/expr/expr.ml.bak", false, "suffix must not match");
      (file_rule, "mylib/expr/expr.ml", false, "component must match whole");
      (file_rule, "lib/expr/sub/expr.ml", false, "components must be contiguous");
      (dir_rule, "bin/dwv_lint.ml", true, "directory fragment");
      (dir_rule, "src/bin/x.ml", true, "directory fragment, nested");
      (dir_rule, "bin", false, "trailing slash means directory only");
      (dir_rule, "cabin/x.ml", false, "no substring match on dir names");
    ]
  in
  List.iter
    (fun (rule, path, expected, what) ->
      Alcotest.(check bool) what expected (Source_rules.allowed rule path))
    checks

(* ---------------- satellite: tree-walk dedupe ---------------- *)

let test_duplicate_roots_dedupe () =
  let once = Source_lint.collect_tree [ corpus ] in
  let twice = Source_lint.collect_tree [ corpus; corpus ] in
  Alcotest.(check int) "duplicate roots collect once" (List.length once)
    (List.length twice);
  let overlapping = Source_lint.collect_tree [ "fixtures"; corpus ] in
  Alcotest.(check int) "overlapping roots collect once" (List.length once)
    (List.length overlapping);
  let ds_once = Source_lint.lint_tree [ corpus ] in
  let ds_twice = Source_lint.lint_tree [ corpus; corpus ] in
  Alcotest.(check int) "no duplicate diagnostics" (List.length ds_once)
    (List.length ds_twice)

let test_symlink_dedupe () =
  let dir = "tmp_symlink_dedupe" in
  let link = Filename.concat dir "link" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  match Unix.symlink (Filename.concat ".." corpus) link with
  | exception Unix.Unix_error _ -> () (* filesystem without symlinks: nothing to test *)
  | () ->
    Fun.protect
      ~finally:(fun () ->
        (try Unix.unlink link with Unix.Unix_error _ -> ());
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
      (fun () ->
        let direct = Source_lint.collect_tree [ corpus ] in
        let both = Source_lint.collect_tree [ corpus; dir ] in
        Alcotest.(check int) "symlinked duplicate collected once"
          (List.length direct) (List.length both))

(* ---------------- satellite: JSON report envelope ---------------- *)

let test_report_json_golden () =
  let ds =
    [
      D.error ~check:"phys-equality"
        ~loc:(D.File { path = "a.ml"; line = 3; col = 7 })
        "bad \"eq\"" ~hint:"use =";
      D.warn ~check:"spec-overlap" ~loc:(D.Model "acc/spec") "sets overlap";
    ]
  in
  let expected =
    {|{"version":1,"summary":{"errors":1,"warnings":1,"notes":0},"diagnostics":[|}
    ^ {|{"check":"spec-overlap","severity":"warning","model":"acc/spec","message":"sets overlap"},|}
    ^ {|{"check":"phys-equality","severity":"error","file":"a.ml","line":3,"col":7,"message":"bad \"eq\"","hint":"use ="}|}
    ^ {|]}|}
  in
  Alcotest.(check string) "envelope is stable" expected (D.report_to_json ds)

let test_text_json_counts_agree () =
  List.iter
    (fun engine ->
      let ds =
        Ast_lint.lint_tree ~exclude:[ "diff_demo.ml" ] ~engine [ corpus ]
      in
      let json = D.report_to_json ds in
      let expect field n =
        let fragment = Fmt.str {|"%s":%d|} field n in
        Alcotest.(check bool)
          (Fmt.str "%s %s" (Ast_lint.engine_label engine) fragment)
          true
          (contains ~sub:fragment json)
      in
      (* the summary object carries the same counts the --plain text
         summary prints *)
      expect "errors" (D.count D.Error ds);
      expect "warnings" (D.count D.Warn ds);
      expect "notes" (D.count D.Info ds))
    [ Ast_lint.Regex; Ast_lint.Ast; Ast_lint.Both ]

let suite =
  [
    Alcotest.test_case "src_ast: fixture parses with exact module name" `Quick
      test_parse_ok;
    Alcotest.test_case "src_ast: syntax errors are reported, not raised" `Quick
      test_parse_error;
    Alcotest.test_case "ast_index: inventory, guards and fan-out sites" `Quick
      test_index_inventory;
    Alcotest.test_case "domain-safety: unguarded memo table under Pool.map fires"
      `Quick test_domain_safety_fires;
    Alcotest.test_case "domain-safety: mutex/atomic-guarded state is silent" `Quick
      test_domain_safety_silent_when_guarded;
    Alcotest.test_case "ast_index: DLS initializer idents are recorded" `Quick
      test_index_records_dls_init_idents;
    Alcotest.test_case "domain-safety: counterfeit DLS (shared init) fires" `Quick
      test_domain_safety_dls_counterfeit_fires;
    Alcotest.test_case "domain-safety: fresh-per-domain DLS memo is silent" `Quick
      test_domain_safety_silent_on_fresh_dls;
    Alcotest.test_case "exn-escape: error/warn/info tiers fire" `Quick
      test_exn_escape_fires;
    Alcotest.test_case "exn-escape: handled and result-speaking code is silent"
      `Quick test_exn_escape_silent_when_handled;
    Alcotest.test_case "exn-escape: cold modules are out of scope" `Quick
      test_exn_escape_ignores_cold_modules;
    Alcotest.test_case "rules: phys-equality on both engines" `Quick
      test_phys_equality;
    Alcotest.test_case "rules: nan-compare on both engines" `Quick test_nan_compare;
    Alcotest.test_case "rules: poly-compare on both engines" `Quick test_poly_compare;
    Alcotest.test_case "rules: float-of-string on both engines" `Quick
      test_float_of_string;
    Alcotest.test_case "rules: poly-compare stays a warning" `Quick
      test_poly_compare_severity;
    Alcotest.test_case "fallback: unparseable file gets ast-parse + regex" `Quick
      test_ast_parse_fallback;
    Alcotest.test_case "differential: engines agree on the corpus" `Quick
      test_differential_agrees_on_corpus;
    Alcotest.test_case "differential: regex blind spot is reported" `Quick
      test_differential_detects_blind_spot;
    Alcotest.test_case "registry lists the ast-layer checks" `Quick
      test_registry_lists_ast_checks;
    Alcotest.test_case "allowlist matches whole path components" `Quick
      test_allowed_components;
    Alcotest.test_case "tree walk dedupes duplicate/overlapping roots" `Quick
      test_duplicate_roots_dedupe;
    Alcotest.test_case "tree walk dedupes symlinked duplicates" `Quick
      test_symlink_dedupe;
    Alcotest.test_case "json report envelope is golden-stable" `Quick
      test_report_json_golden;
    Alcotest.test_case "text and json summaries agree on counts" `Quick
      test_text_json_counts_agree;
  ]
