(* Tests for dwv_analysis: fixture systems that each trip exactly the
   diagnostic they were built to trip, clean passes over the paper's three
   systems, and the source-lint engine (stripping, rules, tree walking). *)

module D = Dwv_analysis.Diagnostics
module Model_check = Dwv_analysis.Model_check
module Source_lint = Dwv_analysis.Source_lint
module Registry = Dwv_analysis.Registry
module Expr = Dwv_expr.Expr
module Parser = Dwv_expr.Parser
module Box = Dwv_interval.Box
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Mat = Dwv_la.Mat
module Rng = Dwv_util.Rng

let has ~check ds = List.exists (fun (d : D.t) -> d.D.check = check) ds
let errors ds = List.filter (fun (d : D.t) -> d.D.severity = D.Error) ds

let check_names ds = List.map (fun (d : D.t) -> d.D.check) ds

let dyn srcs =
  match Parser.parse_system srcs with
  | Ok f -> f
  | Error m -> Alcotest.failf "fixture dynamics: %s" m

(* ---------------- layer 1: dynamics ---------------- *)

let test_dim_mismatch () =
  let f = dyn [ "x1"; "x5 + u3" ] in
  let ds = Model_check.check_dynamics ~name:"fix" ~f ~n:2 ~m:1 in
  Alcotest.(check bool) "flags x5" true (has ~check:Registry.dim_arity ds);
  Alcotest.(check int) "two errors (x5 and u3)" 2 (List.length (errors ds))

let test_arity_count_mismatch () =
  let f = dyn [ "x0" ] in
  let ds = Model_check.check_dynamics ~name:"fix" ~f ~n:2 ~m:0 in
  Alcotest.(check bool) "flags |f| <> n" true (has ~check:Registry.dim_arity ds)

let test_dynamics_clean () =
  let f = dyn [ "x1"; "(1 - x0^2) * x1 - x0 + u0" ] in
  Alcotest.(check (list string)) "clean" []
    (check_names (Model_check.check_dynamics ~name:"fix" ~f ~n:2 ~m:1))

let test_div_by_zero_over_x0 () =
  let f = dyn [ "x1"; "(x1 - x0) / x0" ] in
  let x0 = Box.make ~lo:[| -1.0; -1.0 |] ~hi:[| 1.0; 1.0 |] in
  let ds = Model_check.check_domains ~name:"fix" ~f ~x0 () in
  Alcotest.(check bool) "flags denominator" true (has ~check:Registry.div_by_zero ds);
  Alcotest.(check bool) "is an error" true (D.has_errors ds)

let test_div_clean_when_x0_clear () =
  let f = dyn [ "x1"; "(x1 - x0) / x0" ] in
  let x0 = Box.make ~lo:[| 1.0; -1.0 |] ~hi:[| 2.0; 1.0 |] in
  Alcotest.(check (list string)) "clean" []
    (check_names (Model_check.check_domains ~name:"fix" ~f ~x0 ()))

let test_div_unbounded_input_warns () =
  let f = dyn [ "x0 / (u0 + 2)" ] in
  let x0 = Box.make ~lo:[| 0.0 |] ~hi:[| 1.0 |] in
  let ds = Model_check.check_domains ~name:"fix" ~f ~x0 () in
  (* no input range declared: the analyzer must say it cannot bound the
     denominator, but must not claim an error it cannot prove *)
  Alcotest.(check bool) "warns" true (has ~check:Registry.div_by_zero ds);
  Alcotest.(check bool) "no errors" false (D.has_errors ds);
  (* with the range declared, [1,3] excludes zero: clean *)
  let u = Box.make ~lo:[| -1.0 |] ~hi:[| 1.0 |] in
  Alcotest.(check (list string)) "clean with u" []
    (check_names (Model_check.check_domains ~name:"fix" ~f ~x0 ~u ()))

let test_exp_overflow () =
  let f = dyn [ "exp(800 * x0)" ] in
  let x0 = Box.make ~lo:[| 0.0 |] ~hi:[| 1.0 |] in
  let ds = Model_check.check_domains ~name:"fix" ~f ~x0 () in
  Alcotest.(check bool) "warns" true (has ~check:Registry.exp_overflow ds)

(* ---------------- layer 1: specs ---------------- *)

let spec_fixture ~goal ~unsafe =
  Spec.make ~name:"fix"
    ~x0:(Box.make ~lo:[| 0.0; 0.0 |] ~hi:[| 0.1; 0.1 |])
    ~unsafe ~goal ~delta:0.1 ~steps:10

let test_spec_overlap () =
  let spec =
    spec_fixture
      ~goal:(Box.make ~lo:[| 1.0; 1.0 |] ~hi:[| 2.0; 2.0 |])
      ~unsafe:(Box.make ~lo:[| 1.5; 1.5 |] ~hi:[| 3.0; 3.0 |])
  in
  let ds = Model_check.check_spec ~name:"fix" spec in
  Alcotest.(check bool) "flags overlap" true (has ~check:Registry.spec_overlap ds)

let test_spec_x0_unsafe () =
  let spec =
    spec_fixture
      ~goal:(Box.make ~lo:[| 1.0; 1.0 |] ~hi:[| 2.0; 2.0 |])
      ~unsafe:(Box.make ~lo:[| -0.05; -0.05 |] ~hi:[| 0.05; 0.05 |])
  in
  let ds = Model_check.check_spec ~name:"fix" spec in
  Alcotest.(check bool) "flags x0 in unsafe" true (has ~check:Registry.spec_x0_unsafe ds)

let test_spec_degenerate_goal () =
  let spec =
    spec_fixture
      ~goal:(Box.make ~lo:[| 1.0; 1.0 |] ~hi:[| 1.0; 2.0 |])
      ~unsafe:(Box.make ~lo:[| 5.0; 5.0 |] ~hi:[| 6.0; 6.0 |])
  in
  let ds = Model_check.check_spec ~name:"fix" spec in
  Alcotest.(check bool) "flags flat goal" true (has ~check:Registry.spec_degenerate ds);
  Alcotest.(check bool) "as an error" true (D.has_errors ds)

let test_spec_dims_vs_dynamics () =
  let spec =
    spec_fixture
      ~goal:(Box.make ~lo:[| 1.0; 1.0 |] ~hi:[| 2.0; 2.0 |])
      ~unsafe:(Box.make ~lo:[| 5.0; 5.0 |] ~hi:[| 6.0; 6.0 |])
  in
  let ds = Model_check.check_spec ~name:"fix" ~expected_n:3 spec in
  Alcotest.(check bool) "flags 2-D spec on 3-D plant" true (has ~check:Registry.spec_dims ds)

let test_x0_outside_domain () =
  let spec =
    spec_fixture
      ~goal:(Box.make ~lo:[| 1.0; 1.0 |] ~hi:[| 2.0; 2.0 |])
      ~unsafe:(Box.make ~lo:[| 5.0; 5.0 |] ~hi:[| 6.0; 6.0 |])
  in
  let domain = Box.make ~lo:[| 0.05; 0.0 |] ~hi:[| 1.0; 1.0 |] in
  let ds = Model_check.check_spec ~name:"fix" ~domain spec in
  Alcotest.(check bool) "flags X0 outside domain" true (has ~check:Registry.x0_in_domain ds)

(* ---------------- layer 1: networks / controllers ---------------- *)

(* A serialized single-layer MLP with a NaN weight: exactly what a corrupt
   save or diverged training run produces. *)
let nan_mlp_text = "mlp 1\nlayers 1\nlayer 1 2 tanh\nnan 1.0\n0.0\n"

let test_nn_nan_weight () =
  let net = Dwv_nn.Serialize.mlp_of_string nan_mlp_text in
  let ds = Model_check.check_network ~name:"fix" net in
  Alcotest.(check bool) "flags NaN parameter" true (has ~check:Registry.nn_finite ds);
  Alcotest.(check bool) "as an error" true (D.has_errors ds)

let test_nn_shape_mismatch () =
  let net = Dwv_nn.Mlp.create ~sizes:[ 3; 4; 2 ] ~acts:[ Dwv_nn.Activation.Tanh; Dwv_nn.Activation.Tanh ] (Rng.create 1) in
  let ds = Model_check.check_network ~name:"fix" ~n_in:2 ~n_out:1 net in
  Alcotest.(check int) "both interface dims flagged" 2
    (List.length (List.filter (fun (d : D.t) -> d.D.check = Registry.ctrl_shape) ds))

let test_linear_gain_shape () =
  let c = Controller.linear (Mat.of_rows [ [| 1.0; 2.0; 3.0; 4.0 |] ]) in
  let ds = Model_check.check_controller ~name:"fix" ~n:2 ~m:1 c in
  Alcotest.(check bool) "flags gain columns" true (has ~check:Registry.ctrl_shape ds);
  (* n (pure state feedback) and n+1 (bias-augmented) are both fine *)
  let ok = Controller.linear (Mat.of_rows [ [| 1.0; 2.0; 3.0 |] ]) in
  Alcotest.(check (list string)) "augmented gain clean" []
    (check_names (Model_check.check_controller ~name:"fix" ~n:2 ~m:1 ok))

let test_unbounded_activation_warns () =
  let net =
    Dwv_nn.Mlp.create ~sizes:[ 2; 4; 1 ]
      ~acts:[ Dwv_nn.Activation.Relu; Dwv_nn.Activation.Linear ] (Rng.create 1)
  in
  let c = Controller.net ~output_scale:2.0 net in
  let ds = Model_check.check_controller ~name:"fix" ~n:2 ~m:1 c in
  Alcotest.(check bool) "warns on linear output" true (has ~check:Registry.nn_activation ds)

(* ---------------- layer 1: the paper's systems pass clean ---------------- *)

let builtin_input name =
  let rng = Rng.create 7 in
  match name with
  | "acc" ->
    let module A = Dwv_systems.Acc in
    Model_check.make_input ~name ~sys:A.sampled ~spec:A.spec
      ~controller:A.initial_controller ()
  | "oscillator" ->
    let module O = Dwv_systems.Oscillator in
    Model_check.make_input ~name ~sys:O.sampled ~spec:O.spec
      ~controller:(O.initial_controller rng) ~domain:O.pretrain_region ()
  | "threed" ->
    let module T = Dwv_systems.Threed in
    Model_check.make_input ~name ~sys:T.sampled ~spec:T.spec
      ~controller:(T.initial_controller rng) ~domain:T.pretrain_region ()
  | _ -> Alcotest.failf "unknown builtin %s" name

let test_builtin_systems_clean () =
  List.iter
    (fun name ->
      let ds = Model_check.check (builtin_input name) in
      Alcotest.(check (list string)) (name ^ " clean") [] (check_names ds))
    [ "acc"; "oscillator"; "threed" ]

(* ---------------- layer 2: stripping ---------------- *)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec at i = i + n <= m && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let test_strip_preserves_positions () =
  let src = "let a = 1 (* == *) + 2\n" in
  let stripped = Source_lint.strip src in
  Alcotest.(check int) "same length" (String.length src) (String.length stripped);
  Alcotest.(check bool) "comment blanked" false (contains stripped "==")

let test_phys_equality_flagged () =
  let ds = Source_lint.lint_string ~path:"lib/x/y.ml" "let bad a b = a == b\n" in
  Alcotest.(check bool) "flagged" true (has ~check:"phys-equality" ds);
  match ds with
  | [ d ] -> (
    match d.D.loc with
    | D.File { line; col; _ } ->
      Alcotest.(check int) "line" 1 line;
      Alcotest.(check bool) "column near the operator" true (col >= 10)
    | _ -> Alcotest.fail "expected a file location")
  | _ -> Alcotest.failf "expected exactly one diagnostic, got %d" (List.length ds)

let test_phys_equality_in_comment_or_string_clean () =
  let src = "(* a == b, != c *)\nlet banner = \"=== == !=\"\nlet ok = true\n" in
  Alcotest.(check (list string)) "clean" []
    (check_names (Source_lint.lint_string ~path:"lib/x/y.ml" src))

let test_nan_compare_flagged_but_arrow_clean () =
  let bad = Source_lint.lint_string ~path:"lib/x/y.ml" "let b x = x > nan\n" in
  Alcotest.(check bool) "comparison flagged" true (has ~check:"nan-compare" bad);
  let arm = Source_lint.lint_string ~path:"lib/x/y.ml" "let f = function None -> Float.nan | Some v -> v\n" in
  Alcotest.(check (list string)) "match arm clean" [] (check_names arm)

let test_float_of_string_rule () =
  let bad = Source_lint.lint_string ~path:"lib/x/y.ml" "let v = float_of_string s\n" in
  Alcotest.(check bool) "bare conversion flagged" true (has ~check:"float-of-string" bad);
  let ok = Source_lint.lint_string ~path:"lib/x/y.ml" "let v = float_of_string_opt s\n" in
  Alcotest.(check (list string)) "_opt variant clean" [] (check_names ok)

let test_allowlist () =
  (* expr.ml is the documented legit use of the physical shortcut *)
  let ds = Source_lint.lint_string ~path:"lib/expr/expr.ml" "let eq a b = a == b\n" in
  Alcotest.(check (list string)) "allowlisted" [] (check_names ds)

let test_lint_tree_missing_mli_and_build_refusal () =
  let tmp = Filename.temp_file "dwv_lint" "" in
  Sys.remove tmp;
  let root = tmp in
  let libdir = Filename.concat root "lib" in
  Sys.mkdir root 0o755;
  Sys.mkdir libdir 0o755;
  let orphan = Filename.concat libdir "orphan.ml" in
  let oc = open_out orphan in
  output_string oc "let x = 1\n";
  close_out oc;
  let ds = Source_lint.lint_tree [ root ] in
  Alcotest.(check bool) "orphan flagged" true (has ~check:Registry.missing_mli ds);
  (match Source_lint.lint_tree [ "_build/default" ] with
  | _ -> Alcotest.fail "expected _build refusal"
  | exception Invalid_argument _ -> ());
  Sys.remove orphan;
  Sys.rmdir libdir;
  Sys.rmdir root

(* ---------------- registry ---------------- *)

let test_registry_names_unique_and_enough () =
  let names = List.map (fun (e : Registry.entry) -> e.Registry.name) Registry.all in
  Alcotest.(check bool) "at least 10 checks" true (List.length names >= 10);
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let suite =
  [
    Alcotest.test_case "dim mismatch" `Quick test_dim_mismatch;
    Alcotest.test_case "arity count mismatch" `Quick test_arity_count_mismatch;
    Alcotest.test_case "dynamics clean" `Quick test_dynamics_clean;
    Alcotest.test_case "div by zero over X0" `Quick test_div_by_zero_over_x0;
    Alcotest.test_case "div clean off the singularity" `Quick test_div_clean_when_x0_clear;
    Alcotest.test_case "div with unbounded input warns" `Quick test_div_unbounded_input_warns;
    Alcotest.test_case "exp overflow" `Quick test_exp_overflow;
    Alcotest.test_case "spec overlap" `Quick test_spec_overlap;
    Alcotest.test_case "spec x0 in unsafe" `Quick test_spec_x0_unsafe;
    Alcotest.test_case "spec degenerate goal" `Quick test_spec_degenerate_goal;
    Alcotest.test_case "spec dims vs dynamics" `Quick test_spec_dims_vs_dynamics;
    Alcotest.test_case "x0 outside domain" `Quick test_x0_outside_domain;
    Alcotest.test_case "nan weight in serialized mlp" `Quick test_nn_nan_weight;
    Alcotest.test_case "network shape mismatch" `Quick test_nn_shape_mismatch;
    Alcotest.test_case "linear gain shape" `Quick test_linear_gain_shape;
    Alcotest.test_case "unbounded activation warns" `Quick test_unbounded_activation_warns;
    Alcotest.test_case "builtin systems pass clean" `Quick test_builtin_systems_clean;
    Alcotest.test_case "strip preserves positions" `Quick test_strip_preserves_positions;
    Alcotest.test_case "phys equality flagged" `Quick test_phys_equality_flagged;
    Alcotest.test_case "comments and strings clean" `Quick test_phys_equality_in_comment_or_string_clean;
    Alcotest.test_case "nan compare vs match arrow" `Quick test_nan_compare_flagged_but_arrow_clean;
    Alcotest.test_case "float_of_string rule" `Quick test_float_of_string_rule;
    Alcotest.test_case "allowlist" `Quick test_allowlist;
    Alcotest.test_case "tree walk: missing mli, _build refusal" `Quick
      test_lint_tree_missing_mli_and_build_refusal;
    Alcotest.test_case "registry" `Quick test_registry_names_unique_and_enough;
  ]
