(* Tests for dwv_ode: RK4 accuracy against closed-form solutions, the
   sampled-data closed loop, field bounds. *)

module Expr = Dwv_expr.Expr
module Rk4 = Dwv_ode.Rk4
module Sampled_system = Dwv_ode.Sampled_system
module I = Dwv_interval.Interval

let test_rk4_exponential_decay () =
  (* x' = -x: x(t) = e^{-t} *)
  let f = [| Expr.neg (Expr.var 0) |] in
  let x = Rk4.integrate ~f ~u:[||] ~duration:1.0 ~substeps:20 [| 1.0 |] in
  Alcotest.(check (float 1e-7)) "e^-1" (exp (-1.0)) x.(0)

let test_rk4_harmonic () =
  (* x'' = -x from (1, 0): x(t) = cos t *)
  let f = [| Expr.var 1; Expr.neg (Expr.var 0) |] in
  let x = Rk4.integrate ~f ~u:[||] ~duration:(Float.pi /. 2.0) ~substeps:50 [| 1.0; 0.0 |] in
  Alcotest.(check (float 1e-6)) "cos(pi/2)" 0.0 x.(0);
  Alcotest.(check (float 1e-6)) "-sin(pi/2)" (-1.0) x.(1)

let test_rk4_controlled () =
  (* x' = u: linear growth *)
  let f = [| Expr.input 0 |] in
  let x = Rk4.integrate ~f ~u:[| 2.5 |] ~duration:2.0 ~substeps:4 [| 1.0 |] in
  Alcotest.(check (float 1e-10)) "linear" 6.0 x.(0)

let test_rk4_fourth_order_convergence () =
  (* halving the step should cut the error by about 2^4 *)
  let f = [| Expr.(mul (var 0) (cos_ (var 0))) |] in
  let reference = Rk4.integrate ~f ~u:[||] ~duration:1.0 ~substeps:400 [| 0.5 |] in
  let coarse = Rk4.integrate ~f ~u:[||] ~duration:1.0 ~substeps:5 [| 0.5 |] in
  let fine = Rk4.integrate ~f ~u:[||] ~duration:1.0 ~substeps:10 [| 0.5 |] in
  let e_coarse = Float.abs (coarse.(0) -. reference.(0)) in
  let e_fine = Float.abs (fine.(0) -. reference.(0)) in
  Alcotest.(check bool) "order ~4" true (e_coarse /. Float.max e_fine 1e-18 > 8.0)

let test_rk4_dense_endpoints () =
  let f = [| Expr.neg (Expr.var 0) |] in
  let states = Rk4.integrate_dense ~f ~u:[||] ~duration:1.0 ~substeps:10 [| 2.0 |] in
  Alcotest.(check int) "count" 11 (Array.length states);
  Alcotest.(check (float 1e-12)) "initial" 2.0 states.(0).(0);
  let final = Rk4.integrate ~f ~u:[||] ~duration:1.0 ~substeps:10 [| 2.0 |] in
  Alcotest.(check (float 1e-12)) "final matches" final.(0) states.(10).(0)

let test_rk4_substeps_guard () =
  Alcotest.check_raises "bad substeps" (Invalid_argument "Rk4.integrate: substeps must be >= 1")
    (fun () -> ignore (Rk4.integrate ~f:[| Expr.var 0 |] ~u:[||] ~duration:1.0 ~substeps:0 [| 1.0 |]))

let make_decay () =
  Sampled_system.make ~f:[| Expr.(add (neg (var 0)) (input 0)) |] ~n:1 ~m:1 ~delta:0.5

let test_sampled_simulate_zoh () =
  (* u = 1 held: x converges to 1 *)
  let sys = make_decay () in
  let trace = Sampled_system.simulate sys ~controller:(fun _ -> [| 1.0 |]) ~x0:[| 0.0 |] ~steps:30 in
  Alcotest.(check int) "states" 31 (Array.length trace.Sampled_system.states);
  Alcotest.(check (float 1e-4)) "steady state" 1.0 trace.Sampled_system.states.(30).(0)

let test_sampled_zoh_holds_input () =
  (* a controller reading the state only at sample instants: compare one
     period against direct RK4 with constant input *)
  let sys = make_decay () in
  let u = [| 0.7 |] in
  let direct = Dwv_ode.Rk4.integrate ~f:sys.Sampled_system.f ~u ~duration:0.5 ~substeps:10 [| 2.0 |] in
  let stepped = Sampled_system.step sys ~u [| 2.0 |] in
  Alcotest.(check (float 1e-12)) "one period" direct.(0) stepped.(0)

let test_sampled_trace_inputs_recorded () =
  let sys = make_decay () in
  let k = ref 0 in
  let controller _ = incr k; [| float_of_int !k |] in
  let trace = Sampled_system.simulate sys ~controller ~x0:[| 0.0 |] ~steps:3 in
  Alcotest.(check (array (float 1e-12))) "inputs" [| 1.0 |] trace.Sampled_system.inputs.(0);
  Alcotest.(check (array (float 1e-12))) "inputs" [| 3.0 |] trace.Sampled_system.inputs.(2)

let test_field_bound () =
  let sys = make_decay () in
  (* |f| = |-x + u| over x in [-2, 1], u in [0, 1]: max |(-(-2)) + 1| = 3 *)
  let b = Sampled_system.field_bound sys ~x:[| I.make (-2.0) 1.0 |] ~u:[| I.make 0.0 1.0 |] in
  Alcotest.(check (float 1e-12)) "bound" 3.0 b

let test_make_validation () =
  Alcotest.check_raises "bad delta" (Invalid_argument "Sampled_system.make: delta must be positive")
    (fun () -> ignore (Sampled_system.make ~f:[| Expr.var 0 |] ~n:1 ~m:0 ~delta:0.0));
  Alcotest.check_raises "arity" (Invalid_argument "Sampled_system.make: |f| must equal n")
    (fun () -> ignore (Sampled_system.make ~f:[| Expr.var 0 |] ~n:2 ~m:0 ~delta:0.1))

module Rk45 = Dwv_ode.Rk45

let rk45_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "rk45 failed: %s" (Dwv_robust.Dwv_error.to_string e)

let test_rk45_exponential () =
  let f = [| Expr.neg (Expr.var 0) |] in
  let x, stats = rk45_ok (Rk45.integrate ~f ~u:[||] ~duration:2.0 [| 1.0 |]) in
  Alcotest.(check (float 1e-8)) "e^-2" (exp (-2.0)) x.(0);
  Alcotest.(check bool) "accepted steps" true (stats.Rk45.steps_accepted > 0)

let test_rk45_harmonic_long () =
  (* one full period of the harmonic oscillator: x returns to start *)
  let f = [| Expr.var 1; Expr.neg (Expr.var 0) |] in
  let x, _ =
    rk45_ok (Rk45.integrate ~rtol:1e-10 ~f ~u:[||] ~duration:(2.0 *. Float.pi) [| 1.0; 0.0 |])
  in
  Alcotest.(check (float 1e-6)) "x1 returns" 1.0 x.(0);
  Alcotest.(check (float 1e-6)) "x2 returns" 0.0 x.(1)

let test_rk45_matches_rk4 () =
  let f = Dwv_systems.Oscillator.dynamics in
  let u = [| 0.4 |] in
  let x0 = [| -0.5; 0.5 |] in
  let reference = Rk4.integrate ~f ~u ~duration:1.0 ~substeps:2000 x0 in
  let adaptive, _ = rk45_ok (Rk45.integrate ~rtol:1e-10 ~atol:1e-12 ~f ~u ~duration:1.0 x0) in
  Alcotest.(check (float 1e-7)) "x1 agrees" reference.(0) adaptive.(0);
  Alcotest.(check (float 1e-7)) "x2 agrees" reference.(1) adaptive.(1)

let test_rk45_adapts_step () =
  (* a loose tolerance must take far fewer steps than a tight one *)
  let f = [| Expr.(mul (neg (var 0)) (cos_ (var 0))) |] in
  let _, loose = rk45_ok (Rk45.integrate ~rtol:1e-4 ~f ~u:[||] ~duration:5.0 [| 1.0 |]) in
  let _, tight = rk45_ok (Rk45.integrate ~rtol:1e-12 ~f ~u:[||] ~duration:5.0 [| 1.0 |]) in
  Alcotest.(check bool) "fewer steps when loose" true
    (loose.Rk45.steps_accepted < tight.Rk45.steps_accepted)

let test_rk45_step_budget_is_a_value () =
  (* an impossible budget must come back as a structured error, not kill
     the caller with an exception *)
  let f = [| Expr.neg (Expr.var 0) |] in
  match Rk45.integrate ~max_steps:2 ~h0:1e-6 ~f ~u:[||] ~duration:10.0 [| 1.0 |] with
  | Ok _ -> Alcotest.fail "expected budget exhaustion"
  | Error e ->
    Alcotest.(check string) "taxonomy" "budget" (Dwv_robust.Dwv_error.kind_name e)

let prop_linear_decay_matches_exact =
  QCheck.Test.make ~name:"rk4 matches exact linear solution" ~count:100
    QCheck.(pair (float_range (-2.0) 2.0) (float_range 0.1 1.0))
    (fun (x0, t) ->
      let f = [| Expr.scale (-0.5) (Expr.var 0) |] in
      let x = Rk4.integrate ~f ~u:[||] ~duration:t ~substeps:30 [| x0 |] in
      Float.abs (x.(0) -. (x0 *. exp (-0.5 *. t))) < 1e-8)

let suite =
  [
    Alcotest.test_case "rk4 exponential" `Quick test_rk4_exponential_decay;
    Alcotest.test_case "rk4 harmonic" `Quick test_rk4_harmonic;
    Alcotest.test_case "rk4 controlled" `Quick test_rk4_controlled;
    Alcotest.test_case "rk4 4th order" `Quick test_rk4_fourth_order_convergence;
    Alcotest.test_case "rk4 dense endpoints" `Quick test_rk4_dense_endpoints;
    Alcotest.test_case "rk4 substeps guard" `Quick test_rk4_substeps_guard;
    Alcotest.test_case "sampled simulate" `Quick test_sampled_simulate_zoh;
    Alcotest.test_case "sampled ZOH hold" `Quick test_sampled_zoh_holds_input;
    Alcotest.test_case "sampled inputs recorded" `Quick test_sampled_trace_inputs_recorded;
    Alcotest.test_case "field bound" `Quick test_field_bound;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    QCheck_alcotest.to_alcotest prop_linear_decay_matches_exact;
    Alcotest.test_case "rk45 exponential" `Quick test_rk45_exponential;
    Alcotest.test_case "rk45 harmonic period" `Quick test_rk45_harmonic_long;
    Alcotest.test_case "rk45 matches rk4" `Quick test_rk45_matches_rk4;
    Alcotest.test_case "rk45 adapts step" `Quick test_rk45_adapts_step;
    Alcotest.test_case "rk45 step budget" `Quick test_rk45_step_budget_is_a_value;
  ]
