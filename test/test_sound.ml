(* Layer-5 soundness suite, run against the compiled fixture corpus in
   fixtures/analysis/typed. Each seeded violation in sf_ival.ml /
   sf_cache.ml is pinned to its site, the clean shapes must stay
   silent, the allow machinery is exercised both ways (suppression and
   staleness), and the whole analysis must be bit-identical across
   runs. *)

module D = Dwv_analysis.Diagnostics
module CI = Dwv_analysis.Cmt_index
module RF = Dwv_analysis.Rounding_flow
module CP = Dwv_analysis.Cache_purity
module AI = Dwv_analysis.Ast_index
module SA = Dwv_analysis.Src_ast

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Same cwd convention as test_typed.ml: the corpus builds inside the
   test directory, sources are copied alongside the cmts. *)
let fixture_build = "fixtures/analysis/typed"

let idx = lazy (CI.scan ~build_dir:fixture_build ())

let fixture_ast =
  lazy
    (match SA.parse_file (fixture_build ^ "/sf_cache.ml") with
    | Ok p -> AI.of_files [ p ]
    | Error _ -> Alcotest.fail "fixture parse failed: sf_cache.ml")

(* The default allowlist names real-repo functions (Box.bloat, ...);
   on the fixture corpus they would all be stale, so the tests carry
   their own. *)
let rf_allow_widen =
  { RF.a_fn = "Interval.widen"; a_reason = "root of trust (fixture mirror)" }

let rf_config =
  {
    RF.default_config with
    RF.allow =
      [
        rf_allow_widen;
        { RF.a_fn = "Sf_ival.allowed_split"; a_reason = "allow-mechanism fixture" };
      ];
  }

let cp_config =
  {
    CP.default_config with
    CP.entries =
      [
        "Sf_cache.fingerprint"; "Sf_cache.validate"; "Sf_cache.pure_fingerprint";
        "Sf_cache.check_cached";
      ];
    CP.boundary = [ "Sf_cache.cache_find" ];
    CP.allow = [];
  }

(* ---------------- rounding-flow ---------------- *)

let rounding_sites ds =
  List.filter_map
    (fun d ->
      match (d.D.check, d.D.loc) with
      | "rounding-flow", D.File { path; line; _ } ->
        Some (Filename.basename path, line, d.D.message)
      | _ -> None)
    ds

let test_rounding_seeded () =
  let ds = RF.analyze ~config:rf_config (Lazy.force idx) in
  let sites = rounding_sites ds in
  Alcotest.(check int) "exactly the five seeded sites" 5 (List.length sites);
  List.iter
    (fun (file, _, _) -> Alcotest.(check string) "all in sf_ival.ml" "sf_ival.ml" file)
    sites;
  let expect (line, needle, fn) =
    Alcotest.(check bool)
      (Fmt.str "site %d flags %s in %s" line needle fn)
      true
      (List.exists
         (fun (_, l, msg) ->
           l = line && contains ~sub:needle msg && contains ~sub:fn msg)
         sites)
  in
  List.iter expect
    [
      (7, {|"-."|}, "Sf_ival.bad_pad");
      (7, {|"+."|}, "Sf_ival.bad_pad");
      (11, {|"Interval.mid"|}, "Sf_ival.bad_mid_flow");
      (23, {|"-."|}, "Sf_ival.bad_record");
      (23, {|"+."|}, "Sf_ival.bad_record");
    ];
  (* clean shapes silent, both allow entries used (no staleness) *)
  let all = String.concat "\n" (List.map (fun d -> d.D.message) ds) in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " stays silent") false (contains ~sub all))
    [ "ok_widened"; "ok_mid_metric"; "allowed_split"; "Interval.widen" ];
  Alcotest.(check int) "no stale allow entries" 0
    (List.length (List.filter (fun d -> d.D.check = "sound-allow") ds))

let test_rounding_allow_suppresses () =
  (* dropping the allowed_split entry must surface its midpoint *)
  let ds =
    RF.analyze
      ~config:{ rf_config with RF.allow = [ rf_allow_widen ] }
      (Lazy.force idx)
  in
  Alcotest.(check bool) "allowed_split midpoint now flagged" true
    (List.exists
       (fun (_, l, msg) -> l = 28 && contains ~sub:"Sf_ival.allowed_split" msg)
       (rounding_sites ds))

let test_rounding_stale_allow () =
  let stale = { RF.a_fn = "Sf_ival.no_such_fn"; a_reason = "stale on purpose" } in
  let ds =
    RF.analyze
      ~config:{ rf_config with RF.allow = stale :: rf_config.RF.allow }
      (Lazy.force idx)
  in
  let stales = List.filter (fun d -> d.D.check = "sound-allow") ds in
  Alcotest.(check int) "one stale entry" 1 (List.length stales);
  Alcotest.(check bool) "names the entry" true
    (contains ~sub:"Sf_ival.no_such_fn" (List.hd stales).D.message)

(* ---------------- cache-purity ---------------- *)

let purity ds = List.filter (fun d -> d.D.check = "cache-purity") ds

let test_purity_seeded () =
  let ds =
    CP.analyze ~config:cp_config ~ast:(Lazy.force fixture_ast) (Lazy.force idx)
  in
  let ps = purity ds in
  Alcotest.(check int)
    (Fmt.str "exactly the four seeded violations, got: %s"
       (String.concat " | " (List.map (fun d -> d.D.message) ps)))
    4 (List.length ps);
  let expect needle =
    Alcotest.(check bool) ("reports " ^ needle) true
      (List.exists (fun d -> contains ~sub:needle d.D.message) ps)
  in
  List.iter expect
    [
      "clock read Unix.gettimeofday";
      "Sf_cache.fingerprint -> Sf_cache.stamp";
      "unkeyed mutable global Sf_cache.salt";
      "RNG state read Random.float";
      "Sf_cache.validate -> Sf_cache.jitter";
      "unkeyed mutable global Sf_cache.table";
    ];
  (* the boundary helper reads the clock internally but must not be
     descended into; the pure path stays silent *)
  let all = String.concat "\n" (List.map (fun d -> d.D.message) ds) in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " stays silent") false (contains ~sub all))
    [ "cache_find"; "check_cached"; "pure_fingerprint" ]

let test_purity_allow_and_stale () =
  let allow_table =
    {
      CP.a_fn = "Sf_cache.validate";
      a_what = "Sf_cache.table";
      a_reason = "allow-mechanism fixture";
    }
  in
  let ds =
    CP.analyze
      ~config:{ cp_config with CP.allow = [ allow_table ] }
      ~ast:(Lazy.force fixture_ast) (Lazy.force idx)
  in
  Alcotest.(check int) "table violation suppressed" 3 (List.length (purity ds));
  Alcotest.(check int) "entry is used, not stale" 0
    (List.length (List.filter (fun d -> d.D.check = "sound-allow") ds));
  let stale =
    { CP.a_fn = "Sf_cache.pure_fingerprint"; a_what = "Sf_cache.salt";
      a_reason = "stale on purpose" }
  in
  let ds =
    CP.analyze
      ~config:{ cp_config with CP.allow = [ stale ] }
      ~ast:(Lazy.force fixture_ast) (Lazy.force idx)
  in
  Alcotest.(check int) "stale entry reported" 1
    (List.length (List.filter (fun d -> d.D.check = "sound-allow") ds))

let test_purity_unknown_entry () =
  let ds =
    CP.analyze
      ~config:{ cp_config with CP.entries = [ "Sf_cache.no_such_entry" ] }
      ~ast:(Lazy.force fixture_ast) (Lazy.force idx)
  in
  match purity ds with
  | [ d ] ->
    Alcotest.(check bool) "names the missing entry" true
      (contains ~sub:"unknown entry point Sf_cache.no_such_entry" d.D.message)
  | ps -> Alcotest.fail (Fmt.str "expected 1 diagnostic, got %d" (List.length ps))

(* ---------------- determinism ---------------- *)

let test_deterministic_report () =
  (* fresh scan each time: the rendered report must be bit-identical *)
  let run () =
    let idx = CI.scan ~build_dir:fixture_build () in
    let ds =
      RF.analyze ~config:rf_config idx
      @ CP.analyze ~config:cp_config ~ast:(Lazy.force fixture_ast) idx
    in
    D.report_to_json (D.sort ds)
  in
  Alcotest.(check string) "bit-identical across runs" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "rounding: seeded violations pinned" `Quick
      test_rounding_seeded;
    Alcotest.test_case "rounding: allow suppresses, dropping it surfaces" `Quick
      test_rounding_allow_suppresses;
    Alcotest.test_case "rounding: stale allow is an error" `Quick
      test_rounding_stale_allow;
    Alcotest.test_case "purity: seeded violations pinned" `Quick
      test_purity_seeded;
    Alcotest.test_case "purity: allow used vs stale" `Quick
      test_purity_allow_and_stale;
    Alcotest.test_case "purity: unknown entry point" `Quick
      test_purity_unknown_entry;
    Alcotest.test_case "deterministic report" `Quick test_deterministic_report;
  ]
