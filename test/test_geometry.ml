(* Tests for dwv_geometry: zonotope exactness under linear maps, interval
   hulls, order reduction soundness, flowpipe set operations. *)

module Zonotope = Dwv_geometry.Zonotope
module Setops = Dwv_geometry.Setops
module Mat = Dwv_la.Mat
module Box = Dwv_interval.Box
module I = Dwv_interval.Interval

let check_float = Alcotest.(check (float 1e-9))

let box2 lo0 hi0 lo1 hi1 = Box.make ~lo:[| lo0; lo1 |] ~hi:[| hi0; hi1 |]

let test_of_box_roundtrip () =
  let b = box2 (-1.0) 2.0 3.0 7.0 in
  let z = Zonotope.of_box b in
  Alcotest.(check bool) "roundtrip" true (Box.equal ~eps:1e-12 (Zonotope.to_box z) b)

let test_linear_map_exact_rotation () =
  (* rotating a centered square and hulling: the hull of the rotated
     square by 90 degrees equals the original *)
  let b = box2 (-1.0) 1.0 (-2.0) 2.0 in
  let rot = Mat.of_rows [ [| 0.0; -1.0 |]; [| 1.0; 0.0 |] ] in
  let z = Zonotope.linear_map rot (Zonotope.of_box b) in
  Alcotest.(check bool) "rotated box" true
    (Box.equal ~eps:1e-12 (Zonotope.to_box z) (box2 (-2.0) 2.0 (-1.0) 1.0))

let test_linear_map_no_wrapping () =
  (* the classic wrapping-effect test: iterating a 45-degree rotation on a
     zonotope does NOT grow the set (whereas box iteration would) *)
  let c = cos (Float.pi /. 4.0) and s = sin (Float.pi /. 4.0) in
  let rot = Mat.of_rows [ [| c; -.s |]; [| s; c |] ] in
  let z = ref (Zonotope.of_box (box2 (-1.0) 1.0 (-1.0) 1.0)) in
  for _ = 1 to 8 do
    z := Zonotope.linear_map rot !z
  done;
  (* after 8 eighth-turns we are back to the original square *)
  Alcotest.(check bool) "area preserved" true
    (Box.equal ~eps:1e-9 (Zonotope.to_box !z) (box2 (-1.0) 1.0 (-1.0) 1.0))

let test_minkowski_sum () =
  let a = Zonotope.of_box (box2 0.0 2.0 0.0 2.0) in
  let b = Zonotope.of_box (box2 (-1.0) 1.0 (-3.0) 3.0) in
  let s = Zonotope.minkowski_sum a b in
  Alcotest.(check int) "generators concatenated" 4 (Zonotope.num_generators s);
  Alcotest.(check bool) "hull is the sum" true
    (Box.equal ~eps:1e-12 (Zonotope.to_box s) (box2 (-1.0) 3.0 (-3.0) 5.0))

let test_support_function () =
  let z = Zonotope.of_box (box2 (-1.0) 1.0 (-1.0) 1.0) in
  check_float "axis" 1.0 (Zonotope.support z [| 1.0; 0.0 |]);
  check_float "diagonal" 2.0 (Zonotope.support z [| 1.0; 1.0 |]);
  let shifted = Zonotope.translate [| 5.0; 0.0 |] z in
  check_float "translated" 6.0 (Zonotope.support shifted [| 1.0; 0.0 |])

let test_reduce_order_sound () =
  (* random-ish generator matrix, reduce to 4 generators; interval hull of
     the reduction must contain the hull of the original *)
  let g =
    Mat.of_rows
      [ [| 1.0; 0.2; -0.3; 0.05; 0.4; -0.01 |]; [| 0.0; 0.7; 0.2; -0.1; 0.02; 0.3 |] ]
  in
  let z = Zonotope.make ~center:[| 1.0; -1.0 |] ~generators:g in
  let reduced = Zonotope.reduce_order ~max_generators:4 z in
  Alcotest.(check bool) "fewer generators" true (Zonotope.num_generators reduced <= 4);
  Alcotest.(check bool) "sound enclosure" true
    (Box.subset (Zonotope.to_box z) (Box.bloat 1e-12 (Zonotope.to_box reduced)))

let test_point_and_sample_inside_hull () =
  let g = Mat.of_rows [ [| 1.0; 0.5 |]; [| 0.0; 0.25 |] ] in
  let z = Zonotope.make ~center:[| 0.0; 0.0 |] ~generators:g in
  let hull = Zonotope.to_box z in
  let rng = Dwv_util.Rng.create 12 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "sample in hull" true (Box.contains hull (Zonotope.sample rng z))
  done;
  Alcotest.(check (array (float 1e-12))) "corner point" [| 1.5; 0.25 |]
    (Zonotope.point z [| 1.0; 1.0 |])

let prop_support_dominates_samples =
  QCheck.Test.make ~name:"support function dominates samples" ~count:200
    QCheck.(pair (int_range 0 10_000) (pair (float_range (-1.0) 1.0) (float_range (-1.0) 1.0)))
    (fun (seed, (dx, dy)) ->
      QCheck.assume (Float.abs dx +. Float.abs dy > 0.1);
      let g = Mat.of_rows [ [| 0.8; -0.1; 0.3 |]; [| 0.2; 0.5; -0.4 |] ] in
      let z = Zonotope.make ~center:[| 0.5; -0.5 |] ~generators:g in
      let rng = Dwv_util.Rng.create seed in
      let p = Zonotope.sample rng z in
      let d = [| dx; dy |] in
      (p.(0) *. dx) +. (p.(1) *. dy) <= Zonotope.support z d +. 1e-9)

(* ---------------- Setops ---------------- *)

let segments = [ box2 0.0 1.0 0.0 1.0; box2 1.0 2.0 0.0 1.0; box2 2.0 3.0 1.0 2.0 ]

let test_any_intersects () =
  Alcotest.(check bool) "hit" true (Setops.any_intersects segments (box2 1.5 1.7 0.2 0.4));
  Alcotest.(check bool) "miss" false (Setops.any_intersects segments (box2 5.0 6.0 5.0 6.0))

let test_intersection_volumes () =
  (* target overlapping the first two segments by 0.25 each *)
  let target = box2 0.5 1.5 0.0 0.5 in
  check_float "sum" 0.5 (Setops.sum_intersection_volume segments target);
  check_float "max" 0.25 (Setops.max_intersection_volume segments target)

let test_min_sq_distance () =
  check_float "touching" 0.0 (Setops.min_sq_distance segments (box2 3.0 4.0 2.0 3.0));
  check_float "gap" 1.0 (Setops.min_sq_distance segments (box2 4.0 5.0 1.0 2.0))

let test_any_subset () =
  Alcotest.(check bool) "inside" true (Setops.any_subset segments (box2 (-1.0) 1.5 (-1.0) 1.5));
  Alcotest.(check bool) "not inside" false (Setops.any_subset segments (box2 0.1 0.9 0.1 0.9))

let test_hull_total_volume () =
  Alcotest.(check bool) "hull" true
    (Box.equal (Setops.hull segments) (box2 0.0 3.0 0.0 2.0));
  check_float "total volume" 3.0 (Setops.total_volume segments)

let test_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Setops.min_sq_distance: empty flowpipe")
    (fun () -> ignore (Setops.min_sq_distance [] (box2 0.0 1.0 0.0 1.0)))

(* ---------------- halfspaces & polytopes ---------------- *)

module Halfspace = Dwv_geometry.Halfspace
module Polytope = Dwv_geometry.Polytope

(* the ACC unsafe halfspace: s <= 120 *)
let acc_unsafe = Halfspace.make ~normal:[| 1.0; 0.0 |] ~offset:120.0

let test_halfspace_membership () =
  Alcotest.(check bool) "inside" true (Halfspace.contains acc_unsafe [| 119.0; 50.0 |]);
  Alcotest.(check bool) "outside" false (Halfspace.contains acc_unsafe [| 121.0; 50.0 |]);
  Alcotest.(check bool) "boundary" true (Halfspace.contains acc_unsafe [| 120.0; 0.0 |])

let test_halfspace_box_tests () =
  Alcotest.(check bool) "intersects" true
    (Halfspace.box_intersects acc_unsafe (box2 119.0 121.0 0.0 1.0));
  Alcotest.(check bool) "inside" true
    (Halfspace.box_inside acc_unsafe (box2 100.0 119.0 0.0 1.0));
  Alcotest.(check bool) "avoids" true
    (Halfspace.box_avoids acc_unsafe (box2 121.0 130.0 0.0 1.0));
  check_float "gap" 1.0 (Halfspace.box_gap acc_unsafe (box2 121.0 130.0 0.0 1.0))

let test_halfspace_zonotope_tests () =
  (* rotated zonotope centered at s = 122 with extent sqrt(2) along the
     diagonal: its minimum s coordinate is 122 - 1 = 121 > 120 *)
  let g = Mat.of_rows [ [| 1.0 |]; [| 1.0 |] ] in
  let z = Zonotope.make ~center:[| 122.0; 50.0 |] ~generators:g in
  Alcotest.(check bool) "clear" false (Halfspace.zonotope_intersects acc_unsafe z);
  (* center 119.5: s ranges over [118.5, 120.5] - meets the halfspace but
     pokes out of it *)
  let closer = Zonotope.translate [| -2.5; 0.0 |] z in
  Alcotest.(check bool) "touches" true (Halfspace.zonotope_intersects acc_unsafe closer);
  Alcotest.(check bool) "not inside" false (Halfspace.zonotope_inside acc_unsafe closer);
  let deep = Zonotope.translate [| -4.0; 0.0 |] z in
  Alcotest.(check bool) "inside" true (Halfspace.zonotope_inside acc_unsafe deep)

let test_halfspace_signed_distance () =
  let h = Halfspace.make ~normal:[| 3.0; 4.0 |] ~offset:0.0 in
  (* point (3,4): <n,x> = 25, |n| = 5 -> distance 5 *)
  check_float "normalized" 5.0 (Halfspace.signed_distance h [| 3.0; 4.0 |])

let test_halfspace_deep_box_substitution_sound () =
  (* the deep box used by the metrics must be contained in the true
     halfspace over the operating envelope *)
  let deep_box = box2 0.0 120.0 (-100.0) 200.0 in
  List.iter
    (fun p ->
      if Box.contains deep_box p then
        Alcotest.(check bool) "box point in halfspace" true (Halfspace.contains acc_unsafe p))
    [ [| 0.0; -100.0 |]; [| 120.0; 200.0 |]; [| 60.0; 50.0 |] ]

let test_polytope_of_box_roundtrip () =
  let b = box2 (-1.0) 2.0 3.0 5.0 in
  let p = Polytope.of_box b in
  Alcotest.(check bool) "center in" true (Polytope.contains p (Box.center b));
  Alcotest.(check bool) "outside" false (Polytope.contains p [| 3.0; 4.0 |]);
  (* the widened interval test is conservative on the exact boundary, so
     prove containment against a slightly bloated polytope *)
  Alcotest.(check bool) "box inside" true
    (Polytope.contains_box (Polytope.of_box (Box.bloat 1e-9 b)) b);
  Alcotest.(check bool) "shrunk box inside" true
    (Polytope.contains_box p (box2 (-0.99) 1.99 3.01 4.99));
  Alcotest.(check bool) "shifted avoids" true
    (Polytope.box_avoids p (box2 5.0 6.0 3.0 5.0))

let test_polytope_triangle () =
  (* triangle x >= 0, y >= 0, x + y <= 1 *)
  let tri =
    Polytope.of_halfspaces
      [ Halfspace.make ~normal:[| -1.0; 0.0 |] ~offset:0.0;
        Halfspace.make ~normal:[| 0.0; -1.0 |] ~offset:0.0;
        Halfspace.make ~normal:[| 1.0; 1.0 |] ~offset:1.0 ]
  in
  Alcotest.(check bool) "inside" true (Polytope.contains tri [| 0.25; 0.25 |]);
  Alcotest.(check bool) "outside" false (Polytope.contains tri [| 0.75; 0.75 |]);
  Alcotest.(check bool) "small box inside" true
    (Polytope.contains_box tri (box2 0.1 0.2 0.1 0.2));
  Alcotest.(check bool) "corner box not inside" false
    (Polytope.contains_box tri (box2 0.4 0.7 0.4 0.7));
  Alcotest.(check bool) "distant box avoids" true (Polytope.box_avoids tri (box2 2.0 3.0 2.0 3.0));
  (* zonotope containment via support functions *)
  let z = Zonotope.of_box (box2 0.2 0.3 0.2 0.3) in
  Alcotest.(check bool) "zonotope inside" true (Polytope.zonotope_inside tri z)

let prop_halfspace_box_tests_consistent =
  QCheck.Test.make ~name:"halfspace box tests partition correctly" ~count:300
    QCheck.(
      quad (float_range (-5.0) 5.0) (float_range 0.1 3.0) (float_range (-5.0) 5.0)
        (float_range 0.1 3.0))
    (fun (lo0, w0, lo1, w1) ->
      let b = box2 lo0 (lo0 +. w0) lo1 (lo1 +. w1) in
      let h = Halfspace.make ~normal:[| 1.0; -0.5 |] ~offset:0.7 in
      let inside = Halfspace.box_inside h b
      and avoids = Halfspace.box_avoids h b
      and meets = Halfspace.box_intersects h b in
      (* inside => meets; avoids => not meets; not both inside and avoids *)
      (not (inside && avoids)) && (not inside || meets) && (not avoids || not meets))

let suite =
  [
    Alcotest.test_case "of_box roundtrip" `Quick test_of_box_roundtrip;
    Alcotest.test_case "linear map rotation" `Quick test_linear_map_exact_rotation;
    Alcotest.test_case "no wrapping effect" `Quick test_linear_map_no_wrapping;
    Alcotest.test_case "minkowski sum" `Quick test_minkowski_sum;
    Alcotest.test_case "support function" `Quick test_support_function;
    Alcotest.test_case "order reduction sound" `Quick test_reduce_order_sound;
    Alcotest.test_case "points and samples" `Quick test_point_and_sample_inside_hull;
    QCheck_alcotest.to_alcotest prop_support_dominates_samples;
    Alcotest.test_case "setops any_intersects" `Quick test_any_intersects;
    Alcotest.test_case "setops volumes" `Quick test_intersection_volumes;
    Alcotest.test_case "setops min distance" `Quick test_min_sq_distance;
    Alcotest.test_case "setops any_subset" `Quick test_any_subset;
    Alcotest.test_case "setops hull/volume" `Quick test_hull_total_volume;
    Alcotest.test_case "setops empty raises" `Quick test_empty_raises;
    Alcotest.test_case "halfspace membership" `Quick test_halfspace_membership;
    Alcotest.test_case "halfspace box tests" `Quick test_halfspace_box_tests;
    Alcotest.test_case "halfspace zonotope tests" `Quick test_halfspace_zonotope_tests;
    Alcotest.test_case "halfspace signed distance" `Quick test_halfspace_signed_distance;
    Alcotest.test_case "halfspace deep-box substitution" `Quick
      test_halfspace_deep_box_substitution_sound;
    Alcotest.test_case "polytope of box" `Quick test_polytope_of_box_roundtrip;
    Alcotest.test_case "polytope triangle" `Quick test_polytope_triangle;
    QCheck_alcotest.to_alcotest prop_halfspace_box_tests_consistent;
  ]
