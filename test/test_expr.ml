(* Tests for dwv_expr: evaluation, smart-constructor folding, symbolic
   differentiation (against finite differences), Lie derivatives, interval
   soundness. *)

module Expr = Dwv_expr.Expr
module I = Dwv_interval.Interval

let check_float = Alcotest.(check (float 1e-9))

let x0 = Expr.var 0
let x1 = Expr.var 1
let u0 = Expr.input 0

let test_eval_basic () =
  let e = Expr.(add (mul x0 x1) (scale 2.0 u0)) in
  check_float "eval" 11.0 (Expr.eval e ~x:[| 3.0; 1.0 |] ~u:[| 4.0 |])

let test_eval_transcendental () =
  let e = Expr.(add (sin_ x0) (mul (cos_ x0) (tanh_ x1))) in
  let x = [| 0.7; -0.3 |] in
  check_float "eval" (sin 0.7 +. (cos 0.7 *. tanh (-0.3))) (Expr.eval e ~x ~u:[||])

let test_constant_folding () =
  Alcotest.(check bool) "add 0" true (Expr.add x0 (Expr.const 0.0) = x0);
  Alcotest.(check bool) "mul 1" true (Expr.mul (Expr.const 1.0) x0 = x0);
  Alcotest.(check bool) "mul 0" true (Expr.mul x0 (Expr.const 0.0) = Expr.const 0.0);
  Alcotest.(check bool) "const prop" true
    (Expr.mul (Expr.const 3.0) (Expr.const 4.0) = Expr.const 12.0);
  Alcotest.(check bool) "pow 0" true (Expr.pow x0 0 = Expr.const 1.0);
  Alcotest.(check bool) "pow 1" true (Expr.pow x0 1 = x0);
  Alcotest.(check bool) "neg neg" true (Expr.neg (Expr.neg x0) = x0)

let test_div_by_zero_const () =
  Alcotest.check_raises "div0" (Invalid_argument "Expr.div: division by constant zero")
    (fun () -> ignore (Expr.div x0 (Expr.const 0.0)))

let finite_diff e ~x ~u i =
  let eps = 1e-6 in
  let xp = Array.copy x and xm = Array.copy x in
  xp.(i) <- xp.(i) +. eps;
  xm.(i) <- xm.(i) -. eps;
  (Expr.eval e ~x:xp ~u -. Expr.eval e ~x:xm ~u) /. (2.0 *. eps)

let test_diff_polynomial () =
  let e = Expr.(add (mul (pow x0 3) x1) (mul (const 2.0) x0)) in
  let d = Expr.diff e ~wrt:(Expr.Wrt_var 0) in
  let x = [| 1.5; -0.7 |] in
  check_float "d/dx0" ((3.0 *. (1.5 ** 2.0) *. -0.7) +. 2.0) (Expr.eval d ~x ~u:[||]);
  Alcotest.(check (float 1e-6)) "matches FD" (finite_diff e ~x ~u:[||] 0)
    (Expr.eval d ~x ~u:[||])

let test_diff_transcendental () =
  let e = Expr.(mul (sin_ x0) (exp_ (mul x0 x1))) in
  let d = Expr.diff e ~wrt:(Expr.Wrt_var 0) in
  let x = [| 0.4; 0.9 |] in
  Alcotest.(check (float 1e-6)) "matches FD" (finite_diff e ~x ~u:[||] 0)
    (Expr.eval d ~x ~u:[||])

let test_diff_input () =
  let e = Expr.(mul u0 (pow x0 2)) in
  let d = Expr.diff e ~wrt:(Expr.Wrt_input 0) in
  check_float "du" 9.0 (Expr.eval d ~x:[| 3.0 |] ~u:[| 5.0 |])

let test_diff_tanh () =
  let e = Expr.tanh_ x0 in
  let d = Expr.diff e ~wrt:(Expr.Wrt_var 0) in
  let x = [| 0.6 |] in
  check_float "1 - tanh^2" (1.0 -. (tanh 0.6 ** 2.0)) (Expr.eval d ~x ~u:[||])

let test_lie_derivative_harmonic () =
  (* harmonic oscillator f = (x1, -x0): L_f of (x0^2 + x1^2)/2 is 0 *)
  let f = [| x1; Expr.neg x0 |] in
  let energy = Expr.(scale 0.5 (add (pow x0 2) (pow x1 2))) in
  let lf = Expr.lie_derivative ~f energy in
  List.iter
    (fun (a, b) -> check_float "invariant" 0.0 (Expr.eval lf ~x:[| a; b |] ~u:[||]))
    [ (1.0, 0.0); (0.3, -0.7); (-2.0, 1.5) ]

let test_lie_derivative_linear () =
  (* f = (x1, -x0): L_f x0 = x1, L_f^2 x0 = -x0 *)
  let f = [| x1; Expr.neg x0 |] in
  let l1 = Expr.lie_derivative ~f x0 in
  let l2 = Expr.lie_derivative ~f l1 in
  check_float "L1" 0.7 (Expr.eval l1 ~x:[| 0.3; 0.7 |] ~u:[||]);
  check_float "L2" (-0.3) (Expr.eval l2 ~x:[| 0.3; 0.7 |] ~u:[||])

let test_jacobians () =
  let f = [| Expr.(mul x0 x1); Expr.(add (pow x0 2) u0) |] in
  let jx = Expr.jacobian_x f ~n:2 in
  let ju = Expr.jacobian_u f ~m:1 in
  let x = [| 2.0; 3.0 |] and u = [| 0.0 |] in
  check_float "df0/dx0" 3.0 (Expr.eval jx.(0).(0) ~x ~u);
  check_float "df0/dx1" 2.0 (Expr.eval jx.(0).(1) ~x ~u);
  check_float "df1/dx0" 4.0 (Expr.eval jx.(1).(0) ~x ~u);
  check_float "df1/dx1" 0.0 (Expr.eval jx.(1).(1) ~x ~u);
  check_float "df1/du0" 1.0 (Expr.eval ju.(1).(0) ~x ~u)

let test_ieval_soundness_fixed () =
  let e = Expr.(add (mul x0 x1) (sin_ x0)) in
  let bx = [| I.make 0.0 1.0; I.make (-1.0) 1.0 |] in
  let range = Expr.ieval e ~x:bx ~u:[||] in
  (* sample points must land inside *)
  List.iter
    (fun (a, b) ->
      let v = Expr.eval e ~x:[| a; b |] ~u:[||] in
      Alcotest.(check bool) "contained" true (I.contains (I.widen range) v))
    [ (0.0, -1.0); (0.5, 0.0); (1.0, 1.0); (0.25, 0.75) ]

let prop_diff_matches_fd =
  QCheck.Test.make ~name:"symbolic diff matches finite differences" ~count:200
    QCheck.(pair (float_range (-1.5) 1.5) (float_range (-1.5) 1.5))
    (fun (a, b) ->
      let e =
        Expr.(
          add
            (mul (pow x0 2) (cos_ x1))
            (sub (exp_ (scale 0.3 x0)) (mul (tanh_ x1) x0)))
      in
      let x = [| a; b |] in
      let d0 = Expr.eval (Expr.diff e ~wrt:(Expr.Wrt_var 0)) ~x ~u:[||] in
      let d1 = Expr.eval (Expr.diff e ~wrt:(Expr.Wrt_var 1)) ~x ~u:[||] in
      Float.abs (d0 -. finite_diff e ~x ~u:[||] 0) < 1e-5
      && Float.abs (d1 -. finite_diff e ~x ~u:[||] 1) < 1e-5)

let prop_ieval_soundness =
  QCheck.Test.make ~name:"interval eval of expr contains point eval" ~count:300
    QCheck.(triple (float_range (-1.0) 1.0) (float_range (-1.0) 1.0) (float_range 0.0 1.0))
    (fun (a, b, t) ->
      let e = Expr.(add (mul (pow x0 3) x1) (cos_ (mul x0 x1))) in
      let bx = [| I.make (Float.min a b) (Float.max a b); I.make (-0.5) 0.5 |] in
      let x = [| I.sample bx.(0) ~t; I.sample bx.(1) ~t:(1.0 -. t) |] in
      let v = Expr.eval e ~x ~u:[||] in
      I.contains (I.widen (Expr.ieval e ~x:bx ~u:[||])) v)

(* ---------------- parser ---------------- *)

module Parser = Dwv_expr.Parser

let parse_ok src = match Parser.parse src with Ok e -> e | Error m -> Alcotest.failf "parse %S: %s" src m

let test_parse_arithmetic () =
  let e = parse_ok "1 + 2 * x0 - x1 / 4" in
  check_float "eval" (1.0 +. (2.0 *. 3.0) -. (8.0 /. 4.0)) (Expr.eval e ~x:[| 3.0; 8.0 |] ~u:[||])

let test_parse_precedence () =
  (* ^ binds tighter than *, * tighter than + *)
  let e = parse_ok "2 * x0^2 + 1" in
  check_float "precedence" 19.0 (Expr.eval e ~x:[| 3.0 |] ~u:[||])

let test_parse_unary_minus () =
  let e = parse_ok "-x0^2" in
  (* -(x0^2), not (-x0)^2... both equal here; use an odd case *)
  check_float "negation" (-9.0) (Expr.eval e ~x:[| 3.0 |] ~u:[||]);
  let e2 = parse_ok "3 - -2" in
  check_float "double minus" 5.0 (Expr.eval e2 ~x:[||] ~u:[||])

let test_parse_functions () =
  let e = parse_ok "sin(x0) * cos(x1) + tanh(u0) - exp(0)" in
  let x = [| 0.3; 0.7 |] and u = [| -0.2 |] in
  check_float "functions" ((sin 0.3 *. cos 0.7) +. tanh (-0.2) -. 1.0) (Expr.eval e ~x ~u)

let test_parse_vanderpol () =
  (* the oscillator x2' exactly as documentation writes it *)
  let e = parse_ok "(1 - x0^2) * x1 - x0 + u0" in
  let x = [| -0.5; 0.5 |] and u = [| 1.3 |] in
  let expected = ((1.0 -. 0.25) *. 0.5) +. 0.5 +. 1.3 in
  check_float "van der pol" expected (Expr.eval e ~x ~u)

let test_parse_scientific_notation () =
  let e = parse_ok "1.5e-2 * x0" in
  check_float "scientific" 0.015 (Expr.eval e ~x:[| 1.0 |] ~u:[||])

let test_parse_pi () =
  let e = parse_ok "sin(pi / 2)" in
  check_float "pi" 1.0 (Expr.eval e ~x:[||] ~u:[||])

let test_parse_errors () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | Ok _ -> Alcotest.failf "expected failure for %S" src
      | Error _ -> ())
    [ "x"; "x0 +"; "(x0"; "x0 ^ x1"; "x0 ^ -2"; "foo(x0)"; "1..2"; "x0 x1"; "" ]

(* Error messages must carry the offending token and its position. *)
let test_parse_error_positions () =
  let contains hay needle =
    let n = String.length needle and m = String.length hay in
    let rec at i = i + n <= m && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  in
  let expect src fragments =
    match Parser.parse src with
    | Ok _ -> Alcotest.failf "expected failure for %S" src
    | Error m ->
      List.iter
        (fun frag ->
          Alcotest.(check bool) (Fmt.str "%S mentions %S (got %S)" src frag m) true
            (contains m frag))
        fragments
  in
  expect "x0 +" [ "at offset 4"; "unexpected end of input" ];
  expect "(x0" [ "offset"; "')'" ];
  expect "x0 x1" [ "offset 3"; "trailing input"; "x1" ];
  expect "foo(x0)" [ "offset 0"; "foo" ];
  expect "x0 ^ x1" [ "offset"; "exponent" ]

let test_equal_structural () =
  let a = parse_ok "sin(x0 * x1) + u0" in
  let b = parse_ok "sin(x0 * x1) + u0" in
  Alcotest.(check bool) "separately parsed copies equal" true (Expr.equal a b);
  Alcotest.(check bool) "different exprs differ" false
    (Expr.equal a (parse_ok "sin(x0 * x1) + u1"));
  Alcotest.(check bool) "pow exponent matters" false
    (Expr.equal (parse_ok "x0^2") (parse_ok "x0^3"));
  (* the memo-table contract: NaN constants are self-equal *)
  Alcotest.(check bool) "nan const self-equal" true
    (Expr.equal (Expr.const Float.nan) (Expr.const Float.nan))

(* ---------------- hash-consing / interning ---------------- *)

(* Random expressions are generated from a RECIPE so the same structure
   can be built twice through the smart constructors: interning must
   map both builds to the same node. *)
type recipe =
  | R_const of float
  | R_var of int
  | R_input of int
  | R_add of recipe * recipe
  | R_sub of recipe * recipe
  | R_mul of recipe * recipe
  | R_div of recipe * recipe
  | R_neg of recipe
  | R_pow of recipe * int
  | R_sin of recipe
  | R_cos of recipe
  | R_exp of recipe
  | R_tanh of recipe

let rec build_recipe = function
  | R_const c -> Expr.const c
  | R_var i -> Expr.var i
  | R_input j -> Expr.input j
  | R_add (a, b) -> Expr.add (build_recipe a) (build_recipe b)
  | R_sub (a, b) -> Expr.sub (build_recipe a) (build_recipe b)
  | R_mul (a, b) -> Expr.mul (build_recipe a) (build_recipe b)
  | R_div (a, b) ->
    (* denominator bounded away from the constant zero so [div] never
       raises: 1 + b^2 folds to a constant >= 1 when b is constant *)
    let d = build_recipe b in
    Expr.div (build_recipe a) (Expr.add (Expr.const 1.0) (Expr.mul d d))
  | R_neg a -> Expr.neg (build_recipe a)
  | R_pow (a, k) -> Expr.pow (build_recipe a) k
  | R_sin a -> Expr.sin_ (build_recipe a)
  | R_cos a -> Expr.cos_ (build_recipe a)
  | R_exp a -> Expr.exp_ (build_recipe a)
  | R_tanh a -> Expr.tanh_ (build_recipe a)

let gen_recipe =
  let open QCheck.Gen in
  (* a small leaf space makes cross-recipe collisions likely, which is
     what exercises the interesting direction of the iff *)
  let leaf =
    oneof
      [
        map (fun c -> R_const c)
          (oneofl [ 0.0; -0.0; 1.0; -1.0; 0.5; 2.0; Float.nan ]);
        map (fun i -> R_var i) (int_bound 2);
        map (fun j -> R_input j) (int_bound 1);
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           let sub = self (n / 2) in
           frequency
             [
               (1, leaf);
               (2, map2 (fun a b -> R_add (a, b)) sub sub);
               (2, map2 (fun a b -> R_sub (a, b)) sub sub);
               (2, map2 (fun a b -> R_mul (a, b)) sub sub);
               (1, map2 (fun a b -> R_div (a, b)) sub sub);
               (1, map (fun a -> R_neg a) sub);
               (1, map2 (fun a k -> R_pow (a, k)) sub (int_bound 3));
               (1, map (fun a -> R_sin a) sub);
               (1, map (fun a -> R_cos a) sub);
               (1, map (fun a -> R_exp a) sub);
               (1, map (fun a -> R_tanh a) sub);
             ])

let rec recipe_to_string = function
  | R_const c -> Fmt.str "%h" c
  | R_var i -> Fmt.str "x%d" i
  | R_input j -> Fmt.str "u%d" j
  | R_add (a, b) -> Fmt.str "(%s + %s)" (recipe_to_string a) (recipe_to_string b)
  | R_sub (a, b) -> Fmt.str "(%s - %s)" (recipe_to_string a) (recipe_to_string b)
  | R_mul (a, b) -> Fmt.str "(%s * %s)" (recipe_to_string a) (recipe_to_string b)
  | R_div (a, b) -> Fmt.str "(%s / %s)" (recipe_to_string a) (recipe_to_string b)
  | R_neg a -> Fmt.str "(- %s)" (recipe_to_string a)
  | R_pow (a, k) -> Fmt.str "%s^%d" (recipe_to_string a) k
  | R_sin a -> Fmt.str "sin(%s)" (recipe_to_string a)
  | R_cos a -> Fmt.str "cos(%s)" (recipe_to_string a)
  | R_exp a -> Fmt.str "exp(%s)" (recipe_to_string a)
  | R_tanh a -> Fmt.str "tanh(%s)" (recipe_to_string a)

let arb_recipe = QCheck.make ~print:recipe_to_string gen_recipe

(* Deep structural equality with bit-pattern constants: the oracle the
   interner must agree with. [Float.equal] would not do — it identifies
   -0. with 0. (IEEE equality), which the interner must keep distinct
   because they are not interchangeable under division. NaN is
   canonicalized by [Expr.const], so bit equality sees all NaNs as one
   constant. Physical identity is observed through [Expr.id], which is
   unique per interned node. *)
let rec structural_eq (a : Expr.t) (b : Expr.t) =
  match (a.Expr.node, b.Expr.node) with
  | Expr.Const x, Expr.Const y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Expr.Var i, Expr.Var j | Expr.Input i, Expr.Input j -> i = j
  | Expr.Add (a1, a2), Expr.Add (b1, b2)
  | Expr.Sub (a1, a2), Expr.Sub (b1, b2)
  | Expr.Mul (a1, a2), Expr.Mul (b1, b2)
  | Expr.Div (a1, a2), Expr.Div (b1, b2) ->
    structural_eq a1 b1 && structural_eq a2 b2
  | Expr.Neg a1, Expr.Neg b1
  | Expr.Sin a1, Expr.Sin b1
  | Expr.Cos a1, Expr.Cos b1
  | Expr.Exp a1, Expr.Exp b1
  | Expr.Tanh a1, Expr.Tanh b1 -> structural_eq a1 b1
  | Expr.Pow (a1, n), Expr.Pow (b1, k) -> n = k && structural_eq a1 b1
  | _, _ -> false

let prop_intern_sound =
  QCheck.Test.make ~name:"interning sound: equal <=> same node <=> structural" ~count:500
    QCheck.(pair arb_recipe arb_recipe)
    (fun (r1, r2) ->
      let a = build_recipe r1 and b = build_recipe r2 in
      let same_node = Expr.id a = Expr.id b in
      Bool.equal (Expr.equal a b) same_node
      && Bool.equal (structural_eq a b) same_node
      && ((not same_node) || Expr.hash a = Expr.hash b))

let prop_intern_rebuild_stable =
  QCheck.Test.make ~name:"interning: rebuild gives the same node and hash" ~count:500
    arb_recipe
    (fun r ->
      let a = build_recipe r in
      let b = build_recipe r in
      Expr.equal a b
      && Expr.id a = Expr.id b
      && Expr.hash a = Expr.hash b
      && Expr.size a = Expr.size b)

let test_rebuild_does_not_grow_intern_table () =
  let src = "sin(x0 * x1) + tanh(x1)^3 - exp(u0) / (1 + x0^2)" in
  let a = parse_ok src in
  let before = Expr.interned () in
  let b = parse_ok src in
  Alcotest.(check int) "no new nodes interned" before (Expr.interned ());
  Alcotest.(check bool) "same node" true (Expr.id a = Expr.id b)

let test_parse_system () =
  match Parser.parse_system [ "x1"; "(1 - x0^2) * x1 - x0 + u0" ] with
  | Error m -> Alcotest.failf "system: %s" m
  | Ok f ->
    Alcotest.(check int) "arity" 2 (Array.length f);
    let d = Expr.eval_vec f ~x:[| -0.5; 0.5 |] ~u:[| 0.0 |] in
    let d_ref = Expr.eval_vec Dwv_systems.Oscillator.dynamics ~x:[| -0.5; 0.5 |] ~u:[| 0.0 |] in
    Alcotest.(check (array (float 1e-12))) "matches built-in" d_ref d

let test_parse_system_error_position () =
  match Parser.parse_system [ "x1"; "x0 +" ] with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error m -> Alcotest.(check bool) "names component" true (String.length m > 0)

let prop_parse_roundtrip_eval =
  QCheck.Test.make ~name:"parsed expression evaluates like the AST" ~count:200
    QCheck.(pair (float_range (-2.0) 2.0) (float_range (-2.0) 2.0))
    (fun (a, b) ->
      let src = "x0^3 * x1 - tanh(x0 * x1) + 0.5" in
      let e = parse_ok src in
      let direct =
        Expr.(
          add
            (sub (mul (pow (var 0) 3) (var 1)) (tanh_ (mul (var 0) (var 1))))
            (const 0.5))
      in
      let x = [| a; b |] in
      Float.abs (Expr.eval e ~x ~u:[||] -. Expr.eval direct ~x ~u:[||]) < 1e-12)

let test_size_and_pp () =
  let e = Expr.(add (mul x0 x1) (const 1.0)) in
  Alcotest.(check int) "size" 5 (Expr.size e);
  Alcotest.(check bool) "pp nonempty" true (String.length (Fmt.str "%a" Expr.pp e) > 0)

let suite =
  [
    Alcotest.test_case "eval basic" `Quick test_eval_basic;
    Alcotest.test_case "eval transcendental" `Quick test_eval_transcendental;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "div by const zero" `Quick test_div_by_zero_const;
    Alcotest.test_case "diff polynomial" `Quick test_diff_polynomial;
    Alcotest.test_case "diff transcendental" `Quick test_diff_transcendental;
    Alcotest.test_case "diff wrt input" `Quick test_diff_input;
    Alcotest.test_case "diff tanh" `Quick test_diff_tanh;
    Alcotest.test_case "lie derivative invariant" `Quick test_lie_derivative_harmonic;
    Alcotest.test_case "lie derivative linear" `Quick test_lie_derivative_linear;
    Alcotest.test_case "jacobians" `Quick test_jacobians;
    Alcotest.test_case "ieval soundness (fixed)" `Quick test_ieval_soundness_fixed;
    QCheck_alcotest.to_alcotest prop_diff_matches_fd;
    QCheck_alcotest.to_alcotest prop_ieval_soundness;
    Alcotest.test_case "size and pp" `Quick test_size_and_pp;
    Alcotest.test_case "parse arithmetic" `Quick test_parse_arithmetic;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse unary minus" `Quick test_parse_unary_minus;
    Alcotest.test_case "parse functions" `Quick test_parse_functions;
    Alcotest.test_case "parse van der pol" `Quick test_parse_vanderpol;
    Alcotest.test_case "parse scientific" `Quick test_parse_scientific_notation;
    Alcotest.test_case "parse pi" `Quick test_parse_pi;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse error positions" `Quick test_parse_error_positions;
    Alcotest.test_case "structural equality" `Quick test_equal_structural;
    QCheck_alcotest.to_alcotest prop_intern_sound;
    QCheck_alcotest.to_alcotest prop_intern_rebuild_stable;
    Alcotest.test_case "rebuild does not grow intern table" `Quick
      test_rebuild_does_not_grow_intern_table;
    Alcotest.test_case "parse system" `Quick test_parse_system;
    Alcotest.test_case "parse system error" `Quick test_parse_system_error_position;
    QCheck_alcotest.to_alcotest prop_parse_roundtrip_eval;
  ]
