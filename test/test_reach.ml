(* Tests for dwv_reach: flowpipe soundness against dense simulation (the
   cardinal property: every simulated trajectory stays inside the
   enclosures), linear/nonlinear verifiers, NN abstractions, verdicts. *)

module Expr = Dwv_expr.Expr
module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Mat = Dwv_la.Mat
module Flowpipe = Dwv_reach.Flowpipe
module Linear_reach = Dwv_reach.Linear_reach
module Taylor_reach = Dwv_reach.Taylor_reach
module Verifier = Dwv_reach.Verifier
module Nn_reach_taylor = Dwv_reach.Nn_reach_taylor
module Nn_reach_bernstein = Dwv_reach.Nn_reach_bernstein
module Tm = Dwv_taylor.Taylor_model
module Tm_vec = Dwv_taylor.Tm_vec
module Mlp = Dwv_nn.Mlp
module Activation = Dwv_nn.Activation
module Rng = Dwv_util.Rng

(* ---------------- flowpipe basics ---------------- *)

let box2 lo0 hi0 lo1 hi1 = Box.make ~lo:[| lo0; lo1 |] ~hi:[| hi0; hi1 |]

let test_flowpipe_accessors () =
  let pipe =
    Flowpipe.make
      ~step_boxes:[| box2 0.0 1.0 0.0 1.0; box2 1.0 2.0 0.0 1.0 |]
      ~segment_boxes:[| box2 0.0 2.0 0.0 1.0 |]
      ~delta:0.1 ~diverged:false
  in
  Alcotest.(check int) "steps" 1 (Flowpipe.steps pipe);
  Alcotest.(check bool) "final" true (Box.equal (Flowpipe.final_box pipe) (box2 1.0 2.0 0.0 1.0));
  Alcotest.(check int) "all boxes" 1 (List.length (Flowpipe.all_boxes pipe))

let test_flowpipe_project () =
  let b3 = Box.make ~lo:[| 0.0; 1.0; 2.0 |] ~hi:[| 1.0; 2.0; 3.0 |] in
  let pipe = Flowpipe.make ~step_boxes:[| b3 |] ~segment_boxes:[||] ~delta:0.1 ~diverged:false in
  let p = Flowpipe.project ~dims:[| 0; 2 |] pipe in
  Alcotest.(check int) "projected dim" 2 (Box.dim (Flowpipe.final_box p));
  Alcotest.(check bool) "kept dims" true
    (Box.equal (Flowpipe.final_box p) (Box.make ~lo:[| 0.0; 2.0 |] ~hi:[| 1.0; 3.0 |]))

(* ---------------- linear reach ---------------- *)

(* the ACC-like affine testbed: a stable scalar system x' = -x + u *)
let scalar_sys = { Linear_reach.a = Mat.of_rows [ [| -1.0 |] ]; b = Mat.of_rows [ [| 1.0 |] ] }

let test_discretize_scalar () =
  let ad, bd = Linear_reach.discretize ~delta:0.5 scalar_sys in
  Alcotest.(check (float 1e-10)) "Ad" (exp (-0.5)) (Mat.get ad 0 0);
  Alcotest.(check (float 1e-10)) "Bd" (1.0 -. exp (-0.5)) (Mat.get bd 0 0)

let test_linear_flowpipe_sound_vs_simulation () =
  (* double integrator with stabilizing feedback; every simulated
     trajectory from X0 must stay inside the segment boxes *)
  let sys =
    { Linear_reach.a = Mat.of_rows [ [| 0.0; 1.0 |]; [| 0.0; 0.0 |] ];
      b = Mat.of_rows [ [| 0.0 |]; [| 1.0 |] ] }
  in
  let gain = Mat.of_rows [ [| -1.0; -1.5 |] ] in
  let x0 = box2 0.9 1.1 (-0.1) 0.1 in
  let delta = 0.1 and steps = 30 in
  let pipe = Linear_reach.flowpipe ~sys ~gain ~x0 ~delta ~steps () in
  Alcotest.(check bool) "completes" false (Flowpipe.diverged pipe);
  let f = [| Expr.var 1; Expr.input 0 |] in
  let sampled = Dwv_ode.Sampled_system.make ~f ~n:2 ~m:1 ~delta in
  let controller x = Mat.matvec gain x in
  let rng = Rng.create 99 in
  let segments = Array.of_list (Flowpipe.segment_boxes pipe) in
  for _ = 1 to 20 do
    let x0p = Box.sample rng x0 in
    let trace = Dwv_ode.Sampled_system.simulate ~substeps:8 sampled ~controller ~x0:x0p ~steps in
    Array.iteri
      (fun k x ->
        if k < steps then begin
          (* state at start of period k must be inside segment k *)
          if not (Box.contains (Box.bloat 1e-7 segments.(k)) x) then
            Alcotest.failf "trajectory escaped segment %d" k
        end)
      trace.Dwv_ode.Sampled_system.states
  done

let test_linear_flowpipe_contracts () =
  let gain = Mat.of_rows [ [| 0.0 |] ] in
  let pipe =
    Linear_reach.flowpipe ~sys:scalar_sys ~gain ~x0:(Box.make ~lo:[| 1.0 |] ~hi:[| 2.0 |])
      ~delta:0.1 ~steps:50 ()
  in
  (* x' = -x contracts toward zero *)
  let final = Flowpipe.final_box pipe in
  Alcotest.(check bool) "contracted" true (I.hi (Box.get final 0) < 0.05);
  Alcotest.(check bool) "stays positive" true (I.lo (Box.get final 0) > 0.0)

let test_linear_flowpipe_divergence_flag () =
  (* unstable closed loop must trip the blow-up detector *)
  let gain = Mat.of_rows [ [| 10.0 |] ] in
  let pipe =
    Linear_reach.flowpipe ~blowup_width:1e3 ~sys:scalar_sys ~gain
      ~x0:(Box.make ~lo:[| 1.0 |] ~hi:[| 1.1 |]) ~delta:0.5 ~steps:100 ()
  in
  Alcotest.(check bool) "diverged" true (Flowpipe.diverged pipe)

let test_intersample_enclosure_covers_flow () =
  (* x' = -x from [1, 1.2], u = 0: x(t) stays in [e^-delta * 1, 1.2] *)
  let x_box = Box.make ~lo:[| 1.0 |] ~hi:[| 1.2 |] in
  let x_next = Box.make ~lo:[| 1.0 *. exp (-0.2) |] ~hi:[| 1.2 *. exp (-0.2) |] in
  let u_box = Box.make ~lo:[| 0.0 |] ~hi:[| 0.0 |] in
  match
    Linear_reach.intersample_enclosure scalar_sys ~x_box ~x_next_box:x_next ~u_box ~delta:0.2
  with
  | None -> Alcotest.fail "expected an enclosure"
  | Some seg ->
    List.iter
      (fun t ->
        List.iter
          (fun x0 ->
            let x = x0 *. exp (-.t) in
            Alcotest.(check bool) "flow covered" true (Box.contains (Box.bloat 1e-9 seg) [| x |]))
          [ 1.0; 1.1; 1.2 ])
      [ 0.0; 0.05; 0.1; 0.15; 0.2 ]

(* ---------------- Taylor reach ---------------- *)

let test_lie_table_sizes () =
  let f = [| Expr.var 1; Expr.neg (Expr.var 0) |] in
  let lie = Taylor_reach.lie_table ~f ~order:3 in
  Alcotest.(check int) "rows" 5 (Array.length lie);
  (* harmonic oscillator: L^2 x0 = -x0 *)
  Alcotest.(check (float 1e-12)) "L2 x0" (-0.4)
    (Expr.eval lie.(2).(0) ~x:[| 0.4; 0.0 |] ~u:[||])

let test_apriori_enclosure_exists () =
  let f = [| Expr.neg (Expr.var 0) |] in
  let x_box = Box.make ~lo:[| 1.0 |] ~hi:[| 1.1 |] in
  match Taylor_reach.apriori_enclosure ~f ~x_box ~u_box:[||] ~delta:0.1 () with
  | None -> Alcotest.fail "no enclosure"
  | Some e ->
    Alcotest.(check bool) "contains start" true (Box.subset x_box (Box.bloat 1e-9 e));
    Alcotest.(check bool) "bounded" true (Box.max_width e < 1.0)

let test_taylor_step_matches_exponential () =
  (* x' = -x: one validated step must enclose the exact flow *)
  let f = [| Expr.neg (Expr.var 0) |] in
  let lie = Taylor_reach.lie_table ~f ~order:4 in
  let x0 = Box.make ~lo:[| 1.0 |] ~hi:[| 1.2 |] in
  let x = Tm_vec.of_box ~order:4 x0 in
  match Taylor_reach.step ~f ~lie ~delta:0.1 x [||] with
  | Error _ -> Alcotest.fail "step failed"
  | Ok { state; segment; _ } ->
    let final = Tm_vec.bound_box state in
    List.iter
      (fun x0p ->
        let exact = x0p *. exp (-0.1) in
        Alcotest.(check bool) "final encloses exact" true
          (Box.contains (Box.bloat 1e-9 final) [| exact |]);
        (* dense flow within the segment *)
        List.iter
          (fun t ->
            Alcotest.(check bool) "segment encloses flow" true
              (Box.contains (Box.bloat 1e-9 segment) [| x0p *. exp (-.t) |]))
          [ 0.0; 0.03; 0.07; 0.1 ])
      [ 1.0; 1.1; 1.2 ];
    (* the enclosure should also be TIGHT: width within 2x of the exact image *)
    let exact_width = 0.2 *. exp (-0.1) in
    Alcotest.(check bool) "tight" true (Box.max_width final < 2.0 *. exact_width)

let test_taylor_step_nonlinear_sound () =
  (* Van der Pol with constant u: validated step vs RK4 samples *)
  let f = Dwv_systems.Oscillator.dynamics in
  let lie = Taylor_reach.lie_table ~f ~order:4 in
  let x0 = box2 (-0.51) (-0.49) 0.49 0.51 in
  let x = Tm_vec.of_box ~order:4 x0 in
  let u_val = 0.3 in
  let u = [| Tm.const ~nvars:2 ~order:4 u_val |] in
  match Taylor_reach.step ~f ~lie ~delta:0.1 x u with
  | Error _ -> Alcotest.fail "step failed"
  | Ok { state; _ } ->
    let final = Tm_vec.bound_box state in
    let rng = Rng.create 5 in
    for _ = 1 to 30 do
      let p = Box.sample rng x0 in
      let xe = Dwv_ode.Rk4.integrate ~f ~u:[| u_val |] ~duration:0.1 ~substeps:50 p in
      Alcotest.(check bool) "rk4 point inside" true (Box.contains (Box.bloat 1e-6 final) xe)
    done

(* ---------------- NN abstractions ---------------- *)

let small_net seed =
  Mlp.create ~sizes:[ 2; 4; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] (Rng.create seed)

let check_control_models_sound ~make_models seed =
  let net = small_net seed in
  let x0 = box2 (-0.5) (-0.3) 0.2 0.4 in
  let x = Tm_vec.of_box ~order:3 x0 in
  let u = make_models ~net x in
  let rng = Rng.create (seed + 1) in
  for _ = 1 to 50 do
    (* pick z in [-1,1]^2, map to the box, compare with the model at z *)
    let z = [| Rng.uniform rng ~lo:(-1.0) ~hi:1.0; Rng.uniform rng ~lo:(-1.0) ~hi:1.0 |] in
    let p = Box.denormalize x0 z in
    let truth = 2.0 *. (Mlp.forward net p).(0) in
    let enclosure = I.widen ~eps:1e-9 (Tm.eval u.(0) z) in
    if not (I.contains enclosure truth) then
      Alcotest.failf "control model unsound: %g not in %a" truth I.pp enclosure
  done

let test_polar_models_sound () =
  check_control_models_sound 3
    ~make_models:(fun ~net x -> Nn_reach_taylor.control_models ~net ~output_scale:2.0 x)

let test_bernstein_models_sound () =
  check_control_models_sound 4 ~make_models:(fun ~net x ->
      Nn_reach_bernstein.control_models ~net ~output_scale:2.0
        ~config:(Nn_reach_bernstein.default_config ~n:2) x)

let test_polar_models_relu_sound () =
  let net = Mlp.create ~sizes:[ 2; 4; 1 ] ~acts:[ Activation.Relu; Activation.Tanh ] (Rng.create 8) in
  let x0 = box2 (-0.2) 0.2 (-0.2) 0.2 in
  let x = Tm_vec.of_box ~order:3 x0 in
  let u = Nn_reach_taylor.control_models ~net ~output_scale:1.5 x in
  let rng = Rng.create 9 in
  for _ = 1 to 50 do
    let z = [| Rng.uniform rng ~lo:(-1.0) ~hi:1.0; Rng.uniform rng ~lo:(-1.0) ~hi:1.0 |] in
    let p = Box.denormalize x0 z in
    let truth = 1.5 *. (Mlp.forward net p).(0) in
    Alcotest.(check bool) "relu model sound" true
      (I.contains (I.widen ~eps:1e-9 (Tm.eval u.(0) z)) truth)
  done

(* Soundness fuzzing: random stable gains and random initial points must
   always stay inside the flowpipe of the linear verifier. *)
let prop_linear_flowpipe_sound_fuzz =
  QCheck.Test.make ~name:"linear flowpipe soundness (random gains)" ~count:25
    QCheck.(triple (float_range 0.2 2.0) (float_range 0.5 2.5) (int_range 0 1000))
    (fun (k1, k2, seed) ->
      let sys =
        { Linear_reach.a = Mat.of_rows [ [| 0.0; 1.0 |]; [| 0.0; 0.0 |] ];
          b = Mat.of_rows [ [| 0.0 |]; [| 1.0 |] ] }
      in
      let gain = Mat.of_rows [ [| -.k1; -.k2 |] ] in
      let x0 = box2 0.9 1.1 (-0.1) 0.1 in
      let steps = 10 and delta = 0.1 in
      let pipe = Linear_reach.flowpipe ~sys ~gain ~x0 ~delta ~steps () in
      (not (Flowpipe.diverged pipe))
      &&
      let f = [| Expr.var 1; Expr.input 0 |] in
      let sampled = Dwv_ode.Sampled_system.make ~f ~n:2 ~m:1 ~delta in
      let controller x = Mat.matvec gain x in
      let rng = Rng.create seed in
      let p = Box.sample rng x0 in
      let trace = Dwv_ode.Sampled_system.simulate ~substeps:6 sampled ~controller ~x0:p ~steps in
      let boxes = Array.of_list (Flowpipe.step_boxes pipe) in
      Array.for_all
        (fun k -> Box.contains (Box.bloat 1e-6 boxes.(k)) trace.Dwv_ode.Sampled_system.states.(k))
        (Array.init (steps + 1) Fun.id))

(* Soundness fuzzing of the validated Taylor step on the Van der Pol field
   with random constant inputs. *)
let prop_taylor_step_sound_fuzz =
  QCheck.Test.make ~name:"taylor step soundness (random inputs)" ~count:25
    QCheck.(pair (float_range (-2.0) 2.0) (int_range 0 1000))
    (fun (u_val, seed) ->
      let f = Dwv_systems.Oscillator.dynamics in
      let lie = Taylor_reach.lie_table ~f ~order:4 in
      let x0 = box2 (-0.55) (-0.45) 0.45 0.55 in
      let x = Tm_vec.of_box ~order:4 x0 in
      let u = [| Tm.const ~nvars:2 ~order:4 u_val |] in
      match Taylor_reach.step ~f ~lie ~delta:0.1 x u with
      | Error _ -> false
      | Ok { state; segment; _ } ->
        let final = Tm_vec.bound_box state in
        let rng = Rng.create seed in
        let p = Box.sample rng x0 in
        let exact = Dwv_ode.Rk4.integrate ~f ~u:[| u_val |] ~duration:0.1 ~substeps:50 p in
        Box.contains (Box.bloat 1e-6 final) exact
        && Box.contains (Box.bloat 1e-6 segment) exact
        && Box.contains (Box.bloat 1e-6 segment) p)

(* ---------------- interval-only ablation ---------------- *)

module Interval_reach = Dwv_reach.Interval_reach

let test_interval_reach_sound_short_horizon () =
  (* on a short horizon the box flowpipe is sound vs simulation *)
  let f = [| Expr.(add (neg (pow (var 0) 3)) (input 0)) |] in
  let rng = Rng.create 21 in
  let net = Mlp.create ~sizes:[ 1; 4; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] rng in
  let x0 = Box.make ~lo:[| 0.4 |] ~hi:[| 0.5 |] in
  let pipe =
    Interval_reach.nn_flowpipe ~order:3 ~f ~delta:0.1 ~steps:5 ~net ~output_scale:1.0 ~x0 ()
  in
  Alcotest.(check bool) "completes" false (Flowpipe.diverged pipe);
  let sampled = Dwv_ode.Sampled_system.make ~f ~n:1 ~m:1 ~delta:0.1 in
  let controller x = [| (Mlp.forward net x).(0) |] in
  let boxes = Array.of_list (Flowpipe.step_boxes pipe) in
  for _ = 1 to 20 do
    let p = Box.sample rng x0 in
    let trace = Dwv_ode.Sampled_system.simulate ~substeps:20 sampled ~controller ~x0:p ~steps:5 in
    Array.iteri
      (fun k x ->
        Alcotest.(check bool) "enclosed" true (Box.contains (Box.bloat 1e-6 boxes.(k)) x))
      trace.Dwv_ode.Sampled_system.states
  done

let test_interval_reach_wraps_where_tm_does_not () =
  (* the wrapping-effect ablation: on the oscillator the box iteration is
     dramatically looser than the Taylor-model pipe over the same horizon *)
  let module Oscillator = Dwv_systems.Oscillator in
  let init =
    Oscillator.pretrained_controller
      ~config:{ Dwv_nn.Pretrain.default_config with epochs = 100 }
      (Rng.create 1)
  in
  let net, output_scale =
    match init with
    | Dwv_core.Controller.Net { net; output_scale } -> (net, output_scale)
    | _ -> assert false
  in
  let steps = 14 in
  let box_pipe =
    Interval_reach.nn_flowpipe ~order:3 ~f:Oscillator.dynamics ~delta:0.1 ~steps ~net
      ~output_scale ~x0:Oscillator.spec.Dwv_core.Spec.x0 ()
  in
  let tm_pipe =
    Verifier.nn_flowpipe ~order:3 ~f:Oscillator.dynamics ~delta:0.1 ~steps ~net ~output_scale
      ~method_:Verifier.Polar ~x0:Oscillator.spec.Dwv_core.Spec.x0 ()
  in
  Alcotest.(check bool) "tm pipe tight" true (Flowpipe.final_width tm_pipe < 0.1);
  Alcotest.(check bool) "box pipe much looser (or diverged)" true
    (Flowpipe.diverged box_pipe
    || Flowpipe.final_width box_pipe > 3.0 *. Flowpipe.final_width tm_pipe)

(* ---------------- verdicts ---------------- *)

let mk_pipe boxes =
  Flowpipe.make ~step_boxes:(Array.of_list boxes)
    ~segment_boxes:(Array.of_list (List.tl boxes))
    ~delta:0.1 ~diverged:false

let test_check_reach_avoid () =
  let goal = box2 4.0 6.0 4.0 6.0 and unsafe = box2 10.0 11.0 10.0 11.0 in
  let pipe = mk_pipe [ box2 0.0 1.0 0.0 1.0; box2 2.0 3.0 2.0 3.0; box2 4.5 5.5 4.5 5.5 ] in
  Alcotest.(check bool) "reach-avoid" true (Verifier.check ~unsafe ~goal pipe = Verifier.Reach_avoid);
  Alcotest.(check (option int)) "goal step" (Some 2) (Verifier.goal_step ~goal pipe)

let test_check_unsafe () =
  let goal = box2 4.0 6.0 4.0 6.0 and unsafe = box2 1.5 3.5 1.5 3.5 in
  let pipe = mk_pipe [ box2 0.0 1.0 0.0 1.0; box2 2.0 3.0 2.0 3.0 ] in
  Alcotest.(check bool) "certainly unsafe" true (Verifier.check ~unsafe ~goal pipe = Verifier.Unsafe)

let test_check_unknown_graze () =
  (* touches the unsafe set without being contained: inconclusive *)
  let goal = box2 4.0 6.0 4.0 6.0 and unsafe = box2 2.5 3.5 2.5 3.5 in
  let pipe = mk_pipe [ box2 0.0 1.0 0.0 1.0; box2 2.0 3.0 2.0 3.0; box2 4.5 5.5 4.5 5.5 ] in
  Alcotest.(check bool) "unknown" true (Verifier.check ~unsafe ~goal pipe = Verifier.Unknown)

let test_check_unknown_no_goal () =
  let goal = box2 40.0 60.0 40.0 60.0 and unsafe = box2 10.0 11.0 10.0 11.0 in
  let pipe = mk_pipe [ box2 0.0 1.0 0.0 1.0; box2 2.0 3.0 2.0 3.0 ] in
  Alcotest.(check bool) "unknown" true (Verifier.check ~unsafe ~goal pipe = Verifier.Unknown)

let test_initial_set_does_not_count_as_goal () =
  (* the initial box sitting in the goal must not satisfy goal-reaching *)
  let goal = box2 0.0 1.0 0.0 1.0 in
  let pipe = mk_pipe [ box2 0.2 0.8 0.2 0.8; box2 5.0 6.0 5.0 6.0 ] in
  Alcotest.(check (option int)) "no goal step" None (Verifier.goal_step ~goal pipe)

(* ---------------- end-to-end NN flowpipe ---------------- *)

let test_nn_flowpipe_sound_vs_simulation () =
  (* stabilized scalar nonlinear system under a tanh net: flowpipe vs
     random rollouts *)
  let f = [| Expr.(add (neg (pow (var 0) 3)) (input 0)) |] in
  let rng = Rng.create 17 in
  let net = Mlp.create ~sizes:[ 1; 4; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] rng in
  let x0 = Box.make ~lo:[| 0.4 |] ~hi:[| 0.5 |] in
  let steps = 10 and delta = 0.1 and output_scale = 1.0 in
  let pipe =
    Verifier.nn_flowpipe ~order:3 ~f ~delta ~steps ~net ~output_scale ~method_:Verifier.Polar
      ~x0 ()
  in
  Alcotest.(check bool) "completes" false (Flowpipe.diverged pipe);
  let sampled = Dwv_ode.Sampled_system.make ~f ~n:1 ~m:1 ~delta in
  let controller x = [| output_scale *. (Mlp.forward net x).(0) |] in
  let steps_boxes = Array.of_list (Flowpipe.step_boxes pipe) in
  for _ = 1 to 20 do
    let p = Box.sample rng x0 in
    let trace = Dwv_ode.Sampled_system.simulate ~substeps:20 sampled ~controller ~x0:p ~steps in
    Array.iteri
      (fun k x ->
        Alcotest.(check bool) "simulated state enclosed" true
          (Box.contains (Box.bloat 1e-5 steps_boxes.(k)) x))
      trace.Dwv_ode.Sampled_system.states
  done

let suite =
  [
    Alcotest.test_case "flowpipe accessors" `Quick test_flowpipe_accessors;
    Alcotest.test_case "flowpipe project" `Quick test_flowpipe_project;
    Alcotest.test_case "discretize scalar" `Quick test_discretize_scalar;
    Alcotest.test_case "linear flowpipe sound" `Quick test_linear_flowpipe_sound_vs_simulation;
    Alcotest.test_case "linear flowpipe contracts" `Quick test_linear_flowpipe_contracts;
    Alcotest.test_case "linear divergence flag" `Quick test_linear_flowpipe_divergence_flag;
    Alcotest.test_case "intersample enclosure" `Quick test_intersample_enclosure_covers_flow;
    Alcotest.test_case "lie table" `Quick test_lie_table_sizes;
    Alcotest.test_case "apriori enclosure" `Quick test_apriori_enclosure_exists;
    Alcotest.test_case "taylor step exponential" `Quick test_taylor_step_matches_exponential;
    Alcotest.test_case "taylor step nonlinear" `Quick test_taylor_step_nonlinear_sound;
    Alcotest.test_case "polar models sound" `Quick test_polar_models_sound;
    Alcotest.test_case "bernstein models sound" `Quick test_bernstein_models_sound;
    Alcotest.test_case "polar relu models sound" `Quick test_polar_models_relu_sound;
    QCheck_alcotest.to_alcotest prop_linear_flowpipe_sound_fuzz;
    QCheck_alcotest.to_alcotest prop_taylor_step_sound_fuzz;
    Alcotest.test_case "interval reach sound" `Quick test_interval_reach_sound_short_horizon;
    Alcotest.test_case "interval reach wraps" `Quick test_interval_reach_wraps_where_tm_does_not;
    Alcotest.test_case "verdict reach-avoid" `Quick test_check_reach_avoid;
    Alcotest.test_case "verdict unsafe" `Quick test_check_unsafe;
    Alcotest.test_case "verdict graze" `Quick test_check_unknown_graze;
    Alcotest.test_case "verdict no goal" `Quick test_check_unknown_no_goal;
    Alcotest.test_case "initial box not goal" `Quick test_initial_set_does_not_count_as_goal;
    Alcotest.test_case "nn flowpipe sound" `Quick test_nn_flowpipe_sound_vs_simulation;
  ]
