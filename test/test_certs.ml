(* Certificate suite (the `@certs` alias): the encode/decode round-trip
   is bit-exact, any single-byte mutation is rejected, the directed
   interval layer genuinely over-approximates, emitted certificates
   full-validate with zero unchecked steps, and the crash-safe cache
   replays bit-identically at any domain count. Spawns domains and
   touches disk, so it stays out of the default runtest next to
   @faults and @parallel. *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Cert = Dwv_cert.Cert
module Cert_ival = Dwv_cert.Cert_ival
module Cert_key = Dwv_cert.Cert_key
module Cert_check = Dwv_cert.Cert_check
module Cert_cache = Dwv_cert.Cert_cache
module Verifier = Dwv_reach.Verifier
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Learner = Dwv_core.Learner
module Metrics = Dwv_core.Metrics
module Pool = Dwv_parallel.Pool
module Fault = Dwv_robust.Fault
module A = Dwv_systems.Acc

(* ---------------- scratch directories ---------------- *)

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dwv_certs_%s_%d" tag (Unix.getpid ()))
  in
  remove_tree dir;
  dir

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Emit one real certificate through the acc robust verifier and hand
   back both the decoded value and its on-disk bytes. *)
let emitted_cert tag =
  let dir = fresh_dir tag in
  let cache = Cert_cache.create ~dir () in
  let report = A.verify_robust ~cache A.initial_controller in
  Alcotest.(check bool) "emission produced a pipe" true
    (Option.is_some report.Verifier.rung);
  let path =
    match Cert_cache.last_store_path cache with
    | Some p -> p
    | None -> Alcotest.fail "no certificate stored"
  in
  let raw = read_file path in
  match Cert.decode raw with
  | Ok cert -> (dir, cache, cert, raw)
  | Error m -> Alcotest.fail ("emitted certificate does not decode: " ^ m)

(* ---------------- qcheck: format properties ---------------- *)

let gen_cert : Cert.t QCheck.Gen.t =
  let open QCheck.Gen in
  let finite = float_range (-1e6) 1e6 in
  let interval =
    map2 (fun a b -> I.make (Float.min a b) (Float.max a b)) finite finite
  in
  let box d = map Box.of_intervals (array_repeat d interval) in
  int_range 1 3 >>= fun dim ->
  int_range 1 4 >>= fun nsegs ->
  box dim >>= fun x0 ->
  box dim >>= fun unsafe ->
  box dim >>= fun goal ->
  oneof
    [
      return Cert.Opaque;
      map
        (fun rows -> Cert.Affine rows)
        (array_size (int_range 1 2) (array_repeat (dim + 1) finite));
    ]
  >>= fun law ->
  oneofl [ Cert.Reach_avoid; Cert.Unsafe; Cert.Unknown ] >>= fun verdict ->
  array_repeat (nsegs + 1) (box dim) >>= fun step_boxes ->
  array_repeat nsegs (box dim) >>= fun segment_boxes ->
  oneof [ return [||]; array_repeat nsegs (box 1) ] >>= fun controls ->
  oneof [ return [||]; array_repeat nsegs (opt (box dim)) ] >>= fun enclosures ->
  oneof [ return [||]; array_repeat nsegs (float_range 0.0 1.0) ]
  >>= fun remainders ->
  float_range 1e-3 1.0 >>= fun delta ->
  string_size ~gen:printable (int_range 0 8) >>= fun backend ->
  string_size ~gen:printable (int_range 0 8) >>= fun params ->
  map Int64.of_int int >>= fun fingerprint ->
  return
    {
      Cert.fingerprint;
      backend;
      params;
      delta;
      dim;
      x0;
      unsafe;
      goal;
      law;
      verdict;
      step_boxes;
      segment_boxes;
      controls;
      enclosures;
      remainders;
    }

let arb_cert = QCheck.make ~print:(fun c -> Fmt.str "%a" Cert.pp c) gen_cert

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"encode |> decode is the identity" arb_cert
    (fun c ->
      match Cert.decode (Cert.encode c) with
      | Ok c' -> Cert.equal c c'
      | Error m -> QCheck.Test.fail_reportf "round-trip decode failed: %s" m)

(* FNV footer: substituting any single byte anywhere (header, payload,
   or the checksum itself) must never leave the certificate Valid. *)
let prop_mutation_never_valid =
  QCheck.Test.make ~count:300 ~name:"single-byte mutation is never Valid"
    QCheck.(triple arb_cert (int_bound 1_000_000) (int_bound 255))
    (fun (c, pos, byte) ->
      let raw = Cert.encode c in
      let pos = pos mod String.length raw in
      let old = Char.code raw.[pos] in
      let byte = if byte = old then (byte + 1) land 0xff else byte in
      let bad = Bytes.of_string raw in
      Bytes.set bad pos (Char.chr byte);
      match Cert_check.validate (Bytes.unsafe_to_string bad) with
      | Cert_check.Valid, _ ->
        QCheck.Test.fail_reportf "mutation at byte %d accepted" pos
      | (Cert_check.Tampered _ | Cert_check.Stale _ | Cert_check.Malformed _), _ ->
        true)

(* ---------------- qcheck: directed rounding is outward ---------------- *)

let arb_ival_sample =
  let open QCheck.Gen in
  let f = float_range (-5.0) 5.0 in
  let t = float_range 0.0 1.0 in
  QCheck.make
    ~print:(fun ((a, b), (c, d), (tx, ty)) ->
      Printf.sprintf "x=(%g,%g) y=(%g,%g) t=(%g,%g)" a b c d tx ty)
    (map3
       (fun xy uv ts -> (xy, uv, ts))
       (pair f f) (pair f f) (pair t t))

let prop_ival_containment =
  QCheck.Test.make ~count:500 ~name:"directed ops contain sampled points"
    arb_ival_sample
    (fun ((a, b), (c, d), (tx, ty)) ->
      let xlo = Float.min a b and xhi = Float.max a b in
      let ylo = Float.min c d and yhi = Float.max c d in
      let x = Cert_ival.make xlo xhi and y = Cert_ival.make ylo yhi in
      let sample lo hi t = Float.min hi (Float.max lo (lo +. (t *. (hi -. lo)))) in
      let px = sample xlo xhi tx and py = sample ylo yhi ty in
      let inside v iv = Cert_ival.lo iv <= v && v <= Cert_ival.hi iv in
      inside (px +. py) (Cert_ival.add x y)
      && inside (px -. py) (Cert_ival.sub x y)
      && inside (px *. py) (Cert_ival.mul x y)
      && inside (Float.exp px) (Cert_ival.exp_ x)
      && inside (sin px) (Cert_ival.sin_ x)
      && inside (cos py) (Cert_ival.cos_ y))

let test_affine_range_contains_corners () =
  let rows = [| [| 1.5; -2.0; 0.25 |] |] in
  let x = Cert_ival.of_box (Box.make ~lo:[| -1.0; 2.0 |] ~hi:[| 1.0; 3.0 |]) in
  let r = (Cert_ival.affine_range rows x).(0) in
  List.iter
    (fun (a, b) ->
      let v = (1.5 *. a) -. (2.0 *. b) +. 0.25 in
      Alcotest.(check bool) "corner inside affine range" true
        (Cert_ival.lo r <= v && v <= Cert_ival.hi r))
    [ (-1.0, 2.0); (-1.0, 3.0); (1.0, 2.0); (1.0, 3.0) ]

(* ---------------- content addresses ---------------- *)

let test_fingerprint_sensitivity () =
  let fp ?(tag = "t") ?(steps = A.spec.Spec.steps) theta =
    Cert_key.fingerprint ~f:A.dynamics ~theta ~x0:A.spec.Spec.x0
      ~unsafe:A.spec.Spec.unsafe ~goal:A.spec.Spec.goal ~delta:A.delta ~steps ~tag
  in
  let a = fp [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "deterministic" true
    (Int64.equal a (fp [| 1.0; 2.0; 3.0 |]));
  Alcotest.(check bool) "theta-sensitive" true
    (not (Int64.equal a (fp [| 1.0; 2.0; 3.0000001 |])));
  Alcotest.(check bool) "steps-sensitive" true
    (not (Int64.equal a (fp ~steps:(A.spec.Spec.steps + 1) [| 1.0; 2.0; 3.0 |])));
  Alcotest.(check bool) "tag-sensitive" true
    (not (Int64.equal a (fp ~tag:"other" [| 1.0; 2.0; 3.0 |])))

(* ---------------- emission full-validates ---------------- *)

let test_emitted_cert_full_validates () =
  let dir, _cache, cert, raw = emitted_cert "emit" in
  (match
     Cert_check.validate ~level:Cert_check.Full ~expected:cert.Cert.fingerprint
       ~f:A.dynamics raw
   with
  | Cert_check.Valid, rep ->
    Alcotest.(check int) "every step flow-checked" A.spec.Spec.steps
      rep.Cert_check.checked;
    Alcotest.(check int) "no unchecked steps" 0 rep.Cert_check.unchecked
  | v, _ ->
    Alcotest.fail ("full validation: " ^ Cert_check.verdict_check_to_string v));
  remove_tree dir

let test_wrong_expected_address_is_stale () =
  let dir, _cache, cert, raw = emitted_cert "stale" in
  (match
     Cert_check.validate ~expected:(Int64.lognot cert.Cert.fingerprint) raw
   with
  | Cert_check.Stale _, _ -> ()
  | v, _ ->
    Alcotest.fail ("expected Stale, got " ^ Cert_check.verdict_check_to_string v));
  remove_tree dir

(* A forged claim with a correct checksum: keep every recorded box but
   swap the claimed verdict for one the boxes do not support. The
   independent re-derivation must call it Tampered. *)
let test_forged_claim_is_tampered () =
  let dir, _cache, cert, _raw = emitted_cert "forge" in
  Alcotest.(check bool) "clean cert validates" true
    (fst (Cert_check.validate_cert cert) = Cert_check.Valid);
  let forged_verdict =
    match Cert_check.derive_verdict cert with
    | Cert.Reach_avoid -> Cert.Unsafe
    | Cert.Unsafe | Cert.Unknown -> Cert.Reach_avoid
  in
  let forged = { cert with Cert.verdict = forged_verdict } in
  (match Cert_check.validate_cert forged with
  | Cert_check.Tampered _, _ -> ()
  | v, _ ->
    Alcotest.fail
      ("expected Tampered, got " ^ Cert_check.verdict_check_to_string v));
  remove_tree dir

(* ---------------- cache behavior ---------------- *)

let test_cache_store_find_gc () =
  let dir, cache, cert, _raw = emitted_cert "cache" in
  Cert_cache.reset_stats cache;
  (match Cert_cache.find cache ~fingerprint:cert.Cert.fingerprint with
  | Some c -> Alcotest.(check bool) "hit is bit-identical" true (Cert.equal c cert)
  | None -> Alcotest.fail "expected a hit");
  Alcotest.(check bool) "unknown address misses" true
    (Cert_cache.find cache ~fingerprint:(Int64.lognot cert.Cert.fingerprint) = None);
  let s = Cert_cache.stats cache in
  Alcotest.(check int) "one hit" 1 s.Cert_cache.hits;
  Alcotest.(check int) "one miss" 1 s.Cert_cache.misses;
  Alcotest.(check int) "no rejects" 0 s.Cert_cache.rejects;
  (* gc under the cap keeps the file but clears the memory tier: the
     next hit must come back off disk, still bit-identical *)
  Alcotest.(check int) "gc under cap deletes nothing" 0 (Cert_cache.gc cache ~keep:64);
  (match Cert_cache.find cache ~fingerprint:cert.Cert.fingerprint with
  | Some c -> Alcotest.(check bool) "disk hit bit-identical" true (Cert.equal c cert)
  | None -> Alcotest.fail "expected a disk hit after gc");
  Alcotest.(check bool) "gc ~keep:0 deletes" true (Cert_cache.gc cache ~keep:0 >= 1);
  Alcotest.(check bool) "gone after gc" true
    (Cert_cache.find cache ~fingerprint:cert.Cert.fingerprint = None);
  remove_tree dir

let test_garbage_disk_file_rejected () =
  let dir = fresh_dir "garbage" in
  let cache = Cert_cache.create ~dir () in
  let fp = 0x1234_5678_9abcL in
  let path =
    match Cert_cache.path_of cache fp with
    | Some p -> p
    | None -> Alcotest.fail "disk-backed cache has no path"
  in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "DWVCnot a certificate at all");
  Alcotest.(check bool) "garbage file is a reject, not a crash" true
    (Cert_cache.find cache ~fingerprint:fp = None);
  Alcotest.(check int) "reject counted" 1 (Cert_cache.stats cache).Cert_cache.rejects;
  remove_tree dir

(* A certificate renamed to another fingerprint's address (a cache
   directory shared across configs, a botched sync, ...) must be
   rejected as stale, never replayed. *)
let test_misfiled_cert_is_rejected () =
  let dir, cache, cert, _raw = emitted_cert "misfiled" in
  let other = Int64.lognot cert.Cert.fingerprint in
  let src = Option.get (Cert_cache.path_of cache cert.Cert.fingerprint) in
  let dst = Option.get (Cert_cache.path_of cache other) in
  Sys.rename src dst;
  Cert_cache.reset_stats cache;
  Alcotest.(check bool) "misfiled cert refused" true
    (Cert_cache.find cache ~fingerprint:other = None);
  Alcotest.(check int) "reject counted" 1 (Cert_cache.stats cache).Cert_cache.rejects;
  remove_tree dir

(* ---------------- probe-adjacency fast tier ---------------- *)

let test_fast_tier_repeat_lookup () =
  let dir, cache, cert, _raw = emitted_cert "fast" in
  Cert_cache.reset_stats cache;
  let fingerprint = cert.Cert.fingerprint in
  (* the first lookup travels the full decode+validate route and seeds
     the validated tier *)
  (match Cert_cache.find cache ~fingerprint with
  | Some c -> Alcotest.(check bool) "first hit bit-identical" true (Cert.equal c cert)
  | None -> Alcotest.fail "expected a hit");
  Alcotest.(check int) "first hit is not fast" 0
    (Cert_cache.stats cache).Cert_cache.fast_hits;
  (* probe adjacency: the repeat lookup of unchanged bytes only compares
     them for equality before reusing the decoded certificate *)
  (match Cert_cache.find cache ~fingerprint with
  | Some c -> Alcotest.(check bool) "fast hit bit-identical" true (Cert.equal c cert)
  | None -> Alcotest.fail "expected a fast hit");
  let s = Cert_cache.stats cache in
  Alcotest.(check int) "fast hit counted" 1 s.Cert_cache.fast_hits;
  Alcotest.(check int) "fast hits included in hits" 2 s.Cert_cache.hits;
  (* a store deposits fresh, never-validated bytes: the fast tier must
     drop its entry so the next lookup revalidates *)
  Cert_cache.store cache cert;
  (match Cert_cache.find cache ~fingerprint with
  | Some c ->
    Alcotest.(check bool) "revalidated hit bit-identical" true (Cert.equal c cert)
  | None -> Alcotest.fail "expected a hit after store");
  Alcotest.(check int) "store invalidated the fast tier" 1
    (Cert_cache.stats cache).Cert_cache.fast_hits;
  remove_tree dir

let test_fast_tier_fault_bypass () =
  let dir, cache, cert, _raw = emitted_cert "fastfault" in
  let fingerprint = cert.Cert.fingerprint in
  (* seed the validated tier with a clean full-route hit *)
  ignore (Cert_cache.find cache ~fingerprint : Cert.t option);
  Cert_cache.reset_stats cache;
  (* an armed cert fault must bypass the fast tier: the corruption
     targets the decode+validate route, and a byte-compare shortcut
     would hide it *)
  Fault.with_faults ~seed:5 [ (0, Fault.Cert_corrupt) ] (fun () ->
      ignore (Fault.begin_call () : Fault.kind option);
      Fun.protect ~finally:Fault.end_call (fun () ->
          Alcotest.(check bool) "corrupted bytes rejected" true
            (Cert_cache.find cache ~fingerprint = None)));
  let s = Cert_cache.stats cache in
  Alcotest.(check int) "no fast hit under an armed cert fault" 0 s.Cert_cache.fast_hits;
  Alcotest.(check int) "reject counted" 1 s.Cert_cache.rejects;
  (* the reject dropped the memory tiers, not the disk copy: a clean
     lookup revalidates the clean bytes off disk via the full route *)
  (match Cert_cache.find cache ~fingerprint with
  | Some c -> Alcotest.(check bool) "clean bytes survive the fault" true (Cert.equal c cert)
  | None -> Alcotest.fail "expected a clean disk hit");
  Alcotest.(check int) "recovery hit was a full validation" 0
    (Cert_cache.stats cache).Cert_cache.fast_hits;
  remove_tree dir

(* ---------------- cache-hit equality across domain counts ---------------- *)

let acc_cfg =
  { Learner.default_config with Learner.max_iters = 4; alpha = 0.2; beta = 0.2; seed = 7 }

let learn_with ?cache ~domains () =
  Pool.with_pool ~oversubscribe:true ~domains (fun pool ->
      Learner.learn ~pool acc_cfg ~metric:Metrics.Geometric ~spec:A.spec
        ~verify:(fun c -> (A.verify_robust ?cache c).Verifier.pipe)
        ~init:A.initial_controller)

let check_same_result label (a : Learner.result) (b : Learner.result) =
  Alcotest.(check (array (float 0.0)))
    (label ^ ": identical theta")
    (Controller.params a.Learner.controller)
    (Controller.params b.Learner.controller);
  Alcotest.(check int) (label ^ ": same iterations") a.Learner.iterations
    b.Learner.iterations;
  Alcotest.(check int)
    (label ^ ": same verifier calls")
    a.Learner.verifier_calls b.Learner.verifier_calls;
  Alcotest.(check bool) (label ^ ": same verdict") true
    (a.Learner.verdict = b.Learner.verdict)

let test_cache_hit_equality_across_domains () =
  let baseline = learn_with ~domains:1 () in
  let dir = fresh_dir "domains" in
  let cache = Cert_cache.create ~dir () in
  ignore (learn_with ~cache ~domains:1 () : Learner.result);
  Cert_cache.reset_stats cache;
  let warm1 = learn_with ~cache ~domains:1 () in
  let s1 = Cert_cache.stats cache in
  Cert_cache.reset_stats cache;
  let warm4 = learn_with ~cache ~domains:4 () in
  let s4 = Cert_cache.stats cache in
  check_same_result "warm domains=1 vs cache-disabled" baseline warm1;
  check_same_result "warm domains=4 vs cache-disabled" baseline warm4;
  Alcotest.(check bool) "domains=1: warm run hits" true (s1.Cert_cache.hits > 0);
  Alcotest.(check int) "domains=1: zero misses" 0 s1.Cert_cache.misses;
  Alcotest.(check int) "domains=1: zero rejects" 0 s1.Cert_cache.rejects;
  Alcotest.(check int) "domains=4: zero misses" 0 s4.Cert_cache.misses;
  Alcotest.(check int) "domains=4: zero rejects" 0 s4.Cert_cache.rejects;
  Alcotest.(check int) "same hit count at 1 and 4 domains" s1.Cert_cache.hits
    s4.Cert_cache.hits;
  remove_tree dir

(* ---------------- suite ---------------- *)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_mutation_never_valid; prop_ival_containment ]

let suite =
  props
  @ [
      Alcotest.test_case "affine range contains corners" `Quick
        test_affine_range_contains_corners;
      Alcotest.test_case "fingerprint sensitivity" `Quick test_fingerprint_sensitivity;
      Alcotest.test_case "emitted cert full-validates" `Quick
        test_emitted_cert_full_validates;
      Alcotest.test_case "wrong expected address is stale" `Quick
        test_wrong_expected_address_is_stale;
      Alcotest.test_case "forged claim is tampered" `Quick test_forged_claim_is_tampered;
      Alcotest.test_case "cache store/find/gc" `Quick test_cache_store_find_gc;
      Alcotest.test_case "garbage disk file rejected" `Quick
        test_garbage_disk_file_rejected;
      Alcotest.test_case "misfiled cert rejected" `Quick test_misfiled_cert_is_rejected;
      Alcotest.test_case "fast tier: repeat lookup" `Quick test_fast_tier_repeat_lookup;
      Alcotest.test_case "fast tier: armed fault bypasses" `Quick
        test_fast_tier_fault_bypass;
      Alcotest.test_case "cache-hit equality at domains 1/4" `Quick
        test_cache_hit_equality_across_domains;
    ]

let () = Alcotest.run "dwv-certs" [ ("certs", suite) ]
