(* Tests for dwv_taylor: the fundamental Taylor-model invariant (function
   value inside poly(z) + remainder), elementary-function composition,
   symbolic-remainder plumbing. *)

module Tm = Dwv_taylor.Taylor_model
module Tm_vec = Dwv_taylor.Tm_vec
module Poly = Dwv_poly.Poly
module I = Dwv_interval.Interval
module Box = Dwv_interval.Box

let order = 4

let var2 i = Tm.var ~nvars:2 ~order i

(* Check the invariant on a grid: for z in the domain, [truth z] must lie
   inside the model's evaluation at z. *)
let check_sound ~name tm truth =
  for i = -4 to 4 do
    for j = -4 to 4 do
      let z = [| float_of_int i /. 4.0; float_of_int j /. 4.0 |] in
      let enclosure = I.widen ~eps:1e-9 (Tm.eval tm z) in
      let v = truth z in
      if not (I.contains enclosure v) then
        Alcotest.failf "%s: %g not in %a at (%g, %g)" name v I.pp enclosure z.(0) z.(1)
    done
  done

let test_var_identity () =
  check_sound ~name:"var" (var2 0) (fun z -> z.(0))

let test_arith_soundness () =
  let z0 = var2 0 and z1 = var2 1 in
  let tm = Tm.add (Tm.mul z0 z1) (Tm.scale 2.0 (Tm.pow z0 2)) in
  check_sound ~name:"arith" tm (fun z -> (z.(0) *. z.(1)) +. (2.0 *. z.(0) *. z.(0)))

let test_mul_truncation_sound () =
  (* order 2 model of z0^2 * z1^2 (degree 4): dropped terms must be
     covered by the remainder *)
  let z0 = Tm.var ~nvars:2 ~order:2 0 and z1 = Tm.var ~nvars:2 ~order:2 1 in
  let tm = Tm.mul (Tm.mul z0 z0) (Tm.mul z1 z1) in
  check_sound ~name:"truncation" tm (fun z -> z.(0) ** 2.0 *. (z.(1) ** 2.0))

let test_tanh_soundness () =
  let z0 = var2 0 in
  let tm = Tm.tanh_ (Tm.scale 1.5 z0) in
  check_sound ~name:"tanh" tm (fun z -> tanh (1.5 *. z.(0)))

let test_sigmoid_soundness () =
  let z0 = var2 0 in
  let tm = Tm.sigmoid_ (Tm.shift 0.5 z0) in
  check_sound ~name:"sigmoid" tm (fun z -> Dwv_util.Floatx.sigmoid (z.(0) +. 0.5))

let test_exp_soundness () =
  let z0 = var2 0 in
  let tm = Tm.exp_ (Tm.scale 0.5 z0) in
  check_sound ~name:"exp" tm (fun z -> exp (0.5 *. z.(0)))

let test_sin_cos_soundness () =
  let z0 = var2 0 and z1 = var2 1 in
  let arg = Tm.add z0 (Tm.scale 0.5 z1) in
  check_sound ~name:"sin" (Tm.sin_ arg) (fun z -> sin (z.(0) +. (0.5 *. z.(1))));
  check_sound ~name:"cos" (Tm.cos_ arg) (fun z -> cos (z.(0) +. (0.5 *. z.(1))))

let test_relu_cases () =
  (* positive range: identity *)
  let pos = Tm.shift 3.0 (var2 0) in
  check_sound ~name:"relu positive" (Tm.relu pos) (fun z -> z.(0) +. 3.0);
  (* negative range: zero *)
  let neg = Tm.shift (-3.0) (var2 0) in
  check_sound ~name:"relu negative" (Tm.relu neg) (fun _ -> 0.0);
  (* straddling: chord relaxation must still be sound *)
  let mid = Tm.scale 0.8 (var2 0) in
  check_sound ~name:"relu straddle" (Tm.relu mid) (fun z -> Float.max (0.8 *. z.(0)) 0.0)

let test_inv_soundness () =
  let tm = Tm.shift 3.0 (var2 0) in
  check_sound ~name:"inv" (Tm.inv tm) (fun z -> 1.0 /. (z.(0) +. 3.0))

let test_inv_zero_raises () =
  Alcotest.check_raises "range contains zero"
    (Failure "Taylor_model.inv: range contains zero") (fun () ->
      ignore (Tm.inv (var2 0)))

let test_of_interval () =
  let tm = Tm.of_interval ~nvars:2 ~order (I.make 1.0 3.0) in
  (* the remainder is widened outward (layer-5 soundness model), so the
     bound matches up to the widening slack and must still contain the
     original interval *)
  Alcotest.(check bool) "bound" true (I.equal ~eps:1e-12 (Tm.bound tm) (I.make 1.0 3.0));
  Alcotest.(check bool) "bound contains" true (I.subset (I.make 1.0 3.0) (Tm.bound tm))

let test_bound_tighter_than_interval () =
  (* x - x = 0 exactly for models, whereas naive intervals widen *)
  let z0 = var2 0 in
  let diff = Tm.sub z0 z0 in
  Alcotest.(check (float 1e-12)) "cancellation" 0.0 (I.width (Tm.bound diff))

let test_sweep_soundness () =
  let z0 = var2 0 in
  let tm = Tm.add (Tm.scale 1.0 z0) (Tm.scale 1e-14 (Tm.pow z0 3)) in
  let swept = Tm.sweep ~tol:1e-10 tm in
  Alcotest.(check int) "term dropped" 1 (Poly.num_terms (Tm.poly swept));
  check_sound ~name:"sweep" swept (fun z -> z.(0) +. (1e-14 *. (z.(0) ** 3.0)))

let test_absorb_var () =
  let z0 = var2 0 and z1 = var2 1 in
  let tm = Tm.add z0 (Tm.scale 0.5 z1) in
  let absorbed = Tm.absorb_var 1 tm in
  (* z1 gone from the polynomial, bound unchanged (as a superset) *)
  let without, with_ = Poly.split_var (Tm.poly absorbed) 1 in
  ignore without;
  Alcotest.(check bool) "no z1 monomials" true (Poly.is_zero with_);
  check_sound ~name:"absorb" absorbed (fun z -> z.(0) +. (0.5 *. z.(1)))

let test_symbolize_remainder () =
  let z0 = var2 0 in
  let tm = Tm.add_remainder (I.make (-0.25) 0.75) z0 in
  let sym = Tm.symbolize_remainder ~slot:1 tm in
  Alcotest.(check (float 1e-12)) "zero remainder" 0.0 (I.width (Tm.remainder sym));
  (* bound is preserved: [-1,1] + [-0.25, 0.75] = [-1.25, 1.75] *)
  Alcotest.(check bool) "bound preserved" true
    (I.equal ~eps:1e-12 (Tm.bound sym) (I.make (-1.25) 1.75))

let test_symbolize_busy_slot_raises () =
  let z0 = var2 0 in
  let tm = Tm.add z0 (var2 1) in
  Alcotest.check_raises "slot in use"
    (Invalid_argument "Taylor_model.symbolize_remainder: slot still in use") (fun () ->
      ignore (Tm.symbolize_remainder ~slot:1 tm))

let test_of_expr () =
  let module E = Dwv_expr.Expr in
  let x = [| var2 0; var2 1 |] in
  let u = [| Tm.const ~nvars:2 ~order 0.5 |] in
  let e = E.(add (mul (var 0) (var 1)) (input 0)) in
  let tm = Tm.of_expr ~x ~u e in
  check_sound ~name:"of_expr" tm (fun z -> (z.(0) *. z.(1)) +. 0.5)

let test_of_expr_memo_consistent () =
  let module E = Dwv_expr.Expr in
  let x = [| var2 0; var2 1 |] in
  let u = [||] in
  let shared = E.(mul (var 0) (var 1)) in
  let e = E.(add (tanh_ shared) (pow shared 2)) in
  let plain = Tm.of_expr ~x ~u e in
  let memo = Tm.create_memo () in
  let memoized = Tm.of_expr ~memo ~x ~u e in
  Alcotest.(check bool) "same bound" true
    (I.equal ~eps:1e-12 (Tm.bound plain) (Tm.bound memoized))

(* Regression: the memo table is keyed on structural equality (Expr.equal),
   so structurally identical subtrees built as distinct allocations must hit
   the same entry and still give sound, identical results. Under the old
   physical-equality keying this exercised the silent-miss path. *)
let test_of_expr_memo_structural_duplicates () =
  let module E = Dwv_expr.Expr in
  let x = [| var2 0; var2 1 |] in
  let u = [||] in
  (* two separately-allocated copies of sin(x0 * x1) *)
  let copy () = E.(sin_ (mul (var 0) (var 1))) in
  let a = copy () and b = copy () in
  let e = E.(add (tanh_ a) (pow b 2)) in
  let plain = Tm.of_expr ~x ~u e in
  let memo = Tm.create_memo () in
  let memoized = Tm.of_expr ~memo ~x ~u e in
  Alcotest.(check bool) "same bound across duplicate subtrees" true
    (I.equal ~eps:1e-12 (Tm.bound plain) (Tm.bound memoized));
  check_sound ~name:"memo duplicates" memoized (fun z ->
      let s = Float.sin (z.(0) *. z.(1)) in
      Float.tanh s +. (s *. s))

(* ---------------- Tm_vec ---------------- *)

let test_tm_vec_of_box_roundtrip () =
  let box = Box.make ~lo:[| 1.0; -2.0 |] ~hi:[| 3.0; 0.0 |] in
  let v = Tm_vec.of_box ~order box in
  Alcotest.(check bool) "bound_box = box" true (Box.equal ~eps:1e-12 (Tm_vec.bound_box v) box)

let test_tm_vec_extra_vars () =
  let box = Box.make ~lo:[| 0.0 |] ~hi:[| 1.0 |] in
  let v = Tm_vec.of_box ~total_vars:4 ~order box in
  Alcotest.(check int) "nvars" 4 (Tm.nvars v.(0));
  Alcotest.check_raises "too few"
    (Invalid_argument "Tm_vec.of_box: total_vars below the box dimension") (fun () ->
      ignore (Tm_vec.of_box ~total_vars:0 ~order box))

let test_order_guard () =
  Alcotest.check_raises "order 0" (Invalid_argument "Taylor_model.make: order must be within [1, 7]")
    (fun () -> ignore (Tm.make ~poly:(Poly.zero 2) ~rem:I.zero ~order:0))

let prop_compose_soundness =
  QCheck.Test.make ~name:"tanh model sound on random affine arguments" ~count:100
    QCheck.(
      triple (float_range (-1.0) 1.0) (float_range 0.1 1.5) (float_range (-1.0) 1.0))
    (fun (c, s, z) ->
      let tm = Tm.tanh_ (Tm.shift c (Tm.scale s (Tm.var ~nvars:1 ~order:3 0))) in
      let enclosure = I.widen ~eps:1e-9 (Tm.eval tm [| z |]) in
      I.contains enclosure (tanh ((s *. z) +. c)))

let suite =
  [
    Alcotest.test_case "var identity" `Quick test_var_identity;
    Alcotest.test_case "arith soundness" `Quick test_arith_soundness;
    Alcotest.test_case "mul truncation sound" `Quick test_mul_truncation_sound;
    Alcotest.test_case "tanh sound" `Quick test_tanh_soundness;
    Alcotest.test_case "sigmoid sound" `Quick test_sigmoid_soundness;
    Alcotest.test_case "exp sound" `Quick test_exp_soundness;
    Alcotest.test_case "sin/cos sound" `Quick test_sin_cos_soundness;
    Alcotest.test_case "relu cases" `Quick test_relu_cases;
    Alcotest.test_case "inv sound" `Quick test_inv_soundness;
    Alcotest.test_case "inv zero raises" `Quick test_inv_zero_raises;
    Alcotest.test_case "of_interval" `Quick test_of_interval;
    Alcotest.test_case "dependency cancellation" `Quick test_bound_tighter_than_interval;
    Alcotest.test_case "sweep sound" `Quick test_sweep_soundness;
    Alcotest.test_case "absorb_var" `Quick test_absorb_var;
    Alcotest.test_case "symbolize remainder" `Quick test_symbolize_remainder;
    Alcotest.test_case "symbolize busy slot" `Quick test_symbolize_busy_slot_raises;
    Alcotest.test_case "of_expr" `Quick test_of_expr;
    Alcotest.test_case "of_expr memo" `Quick test_of_expr_memo_consistent;
    Alcotest.test_case "of_expr memo structural duplicates" `Quick
      test_of_expr_memo_structural_duplicates;
    Alcotest.test_case "tm_vec of_box" `Quick test_tm_vec_of_box_roundtrip;
    Alcotest.test_case "tm_vec extra vars" `Quick test_tm_vec_extra_vars;
    Alcotest.test_case "order guard" `Quick test_order_guard;
    QCheck_alcotest.to_alcotest prop_compose_soundness;
  ]
