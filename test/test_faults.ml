(* Fault-injection suite (the `@faults` alias): proves the verification
   loop is total — every Dwv_error kind surfaces as a value, the fallback
   ladder degrades instead of crashing, and Algorithm 1 survives injected
   faults with a verdict and finite parameters. Kept out of the default
   runtest so the tier-1 suite's timing is unchanged. *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box
module Expr = Dwv_expr.Expr
module Mlp = Dwv_nn.Mlp
module Activation = Dwv_nn.Activation
module Rng = Dwv_util.Rng
module Flowpipe = Dwv_reach.Flowpipe
module Verifier = Dwv_reach.Verifier
module Rk45 = Dwv_ode.Rk45
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Learner = Dwv_core.Learner
module Metrics = Dwv_core.Metrics
module Initset = Dwv_core.Initset
module Evaluate = Dwv_core.Evaluate
module Dwv_error = Dwv_robust.Dwv_error
module Budget = Dwv_robust.Budget
module Fault = Dwv_robust.Fault
module Robust_verify = Dwv_robust.Robust_verify

let kind_of = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> Dwv_error.kind_name e

let finite_params c = Array.for_all Float.is_finite (Controller.params c)

(* ---------------- budgets: every exhaustion mode is a value ---------------- *)

let test_deadline_is_a_value () =
  let now = ref 0.0 in
  let b = Budget.create ~clock:(fun () -> !now) ~deadline:1.0 () in
  Alcotest.(check bool) "before deadline" true (Result.is_ok (Budget.check b));
  now := 2.5;
  Alcotest.(check string) "deadline kind" "deadline" (kind_of (Budget.check b));
  Alcotest.(check (float 1e-9)) "elapsed via injected clock" 2.5 (Budget.elapsed b)

let test_call_budget_is_a_value () =
  let b = Budget.create ~max_calls:1 () in
  Alcotest.(check bool) "first call ok" true (Result.is_ok (Budget.spend_call b));
  Alcotest.(check string) "second call exhausts" "budget" (kind_of (Budget.spend_call b));
  Alcotest.(check int) "only one call spent" 1 (Budget.calls b)

let test_step_budget_is_a_value () =
  let b = Budget.create ~max_steps:3 () in
  Alcotest.(check bool) "2 of 3 ok" true (Result.is_ok (Budget.spend_steps ~n:2 b));
  Alcotest.(check string) "overdraw refused" "budget" (kind_of (Budget.spend_steps ~n:2 b));
  Alcotest.(check bool) "exact fit ok" true (Result.is_ok (Budget.spend_steps ~n:1 b))

let test_rk45_nonfinite_is_a_value () =
  (* a NaN initial state must come back as a structured non-finite error,
     not an exception or a silent NaN trajectory *)
  let f = [| Expr.neg (Expr.var 0) |] in
  match Rk45.integrate ~f ~u:[||] ~duration:1.0 [| Float.nan |] with
  | Ok _ -> Alcotest.fail "NaN state integrated"
  | Error e -> Alcotest.(check string) "non-finite kind" "non-finite" (Dwv_error.kind_name e)

(* ---------------- the generic fallback ladder ---------------- *)

let failing_rung name kind =
  Robust_verify.rung ~name (fun () ->
      match kind with
      | `Diverge -> Error (Dwv_error.divergence ~backend:name ~where:"test" ())
      | `Raise -> failwith "backend exploded")

let ok_rung name v = Robust_verify.rung ~name (fun () -> Ok v)

let test_ladder_falls_through_in_order () =
  let o =
    Robust_verify.run
      [ failing_rung "a" `Diverge; failing_rung "b" `Raise; ok_rung "c" 42 ]
  in
  Alcotest.(check (option int)) "value from last rung" (Some 42) o.Robust_verify.value;
  Alcotest.(check (option string)) "rung name" (Some "c") o.Robust_verify.rung;
  Alcotest.(check (option int)) "rung index" (Some 2) o.Robust_verify.rung_index;
  Alcotest.(check (list string)) "failures in ladder order" [ "a"; "b" ]
    (List.map fst o.Robust_verify.failures);
  Alcotest.(check (list string)) "failure taxonomy" [ "divergence"; "backend" ]
    (List.map (fun (_, e) -> Dwv_error.kind_name e) o.Robust_verify.failures)

let test_ladder_spends_call_budget () =
  let b = Budget.create ~max_calls:2 () in
  let run () = Robust_verify.run ~budget:b [ ok_rung "only" () ] in
  Alcotest.(check bool) "call 1 ok" true (Robust_verify.succeeded (run ()));
  Alcotest.(check bool) "call 2 ok" true (Robust_verify.succeeded (run ()));
  let o = run () in
  Alcotest.(check bool) "call 3 refused" false (Robust_verify.succeeded o);
  Alcotest.(check (list string)) "budget failure recorded" [ "budget" ]
    (List.map (fun (_, e) -> Dwv_error.kind_name e) o.Robust_verify.failures)

let test_fault_plan_is_scoped_and_deterministic () =
  Alcotest.(check bool) "inactive outside" false (Fault.active ());
  let faults =
    Fault.with_faults ~seed:3 [ (1, Fault.Nan_theta); (2, Fault.Deadline_hit) ]
      (fun () ->
        let o0 = Robust_verify.run [ ok_rung "r" () ] in
        let o1 = Robust_verify.run [ ok_rung "r" () ] in
        let o2 = Robust_verify.run [ ok_rung "r" () ] in
        Alcotest.(check bool) "call 0 clean" true (o0.Robust_verify.fault = None);
        Alcotest.(check bool) "call 1 nan-theta" true
          (o1.Robust_verify.fault = Some Fault.Nan_theta);
        Alcotest.(check bool) "call 2 fails up front" false (Robust_verify.succeeded o2);
        Alcotest.(check (list string)) "deadline synthesized" [ "deadline" ]
          (List.map (fun (_, e) -> Dwv_error.kind_name e) o2.Robust_verify.failures);
        Fault.injected ())
  in
  Alcotest.(check int) "two faults fired" 2 (List.length faults);
  Alcotest.(check bool) "restored after" false (Fault.active ())

(* ---------------- NN verifier: structured errors + degradation ---------------- *)

(* Tiny 1-D closed loop (x' = -x + u) so NN-verifier fault paths are
   cheap to exercise. *)
let tiny_f = [| Expr.(add (neg (var 0)) (input 0)) |]
let tiny_net = Mlp.create ~sizes:[ 1; 2; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ] (Rng.create 11)
let tiny_x0 = Box.make ~lo:[| -0.1 |] ~hi:[| 0.1 |]

let test_nn_nan_weights_is_a_value () =
  let theta = Mlp.flatten tiny_net in
  theta.(0) <- Float.nan;
  let net = Mlp.unflatten tiny_net theta in
  let o =
    Verifier.nn_flowpipe_outcome ~f:tiny_f ~delta:0.1 ~steps:3 ~net ~output_scale:1.0
      ~method_:Verifier.Polar ~x0:tiny_x0 ()
  in
  Alcotest.(check bool) "pipe marked diverged" true (Flowpipe.diverged o.Flowpipe.pipe);
  match o.Flowpipe.error with
  | None -> Alcotest.fail "no structured error attached"
  | Some e ->
    Alcotest.(check bool) "non-finite or backend" true
      (List.mem (Dwv_error.kind_name e) [ "non-finite"; "backend"; "divergence" ]);
    Alcotest.(check (option string)) "backend recorded" (Some "POLAR") e.Dwv_error.backend

let test_nn_step_budget_stops_flowpipe () =
  let b = Budget.create ~max_steps:2 () in
  let o =
    Verifier.nn_flowpipe_outcome ~budget:b ~f:tiny_f ~delta:0.1 ~steps:5 ~net:tiny_net
      ~output_scale:1.0 ~method_:Verifier.Polar ~x0:tiny_x0 ()
  in
  Alcotest.(check bool) "diverged (truncated)" true (Flowpipe.diverged o.Flowpipe.pipe);
  Alcotest.(check int) "stopped after 2 periods" 2 (Flowpipe.steps o.Flowpipe.pipe);
  match o.Flowpipe.error with
  | Some e -> Alcotest.(check string) "budget kind" "budget" (Dwv_error.kind_name e)
  | None -> Alcotest.fail "no error attached"

let test_nn_robust_substep_rung_equivalent_when_clean () =
  (* zero faults: the primary rung must reproduce nn_flowpipe exactly *)
  let plain =
    Verifier.nn_flowpipe ~f:tiny_f ~delta:0.1 ~steps:5 ~net:tiny_net ~output_scale:1.0
      ~method_:Verifier.Polar ~x0:tiny_x0 ()
  in
  let report =
    Verifier.nn_flowpipe_robust ~f:tiny_f ~delta:0.1 ~steps:5 ~net:tiny_net
      ~output_scale:1.0 ~method_:Verifier.Polar ~x0:tiny_x0 ()
  in
  Alcotest.(check (option int)) "primary rung produced it" (Some 0)
    report.Verifier.rung_index;
  Alcotest.(check int) "no failures" 0 (List.length report.Verifier.failures);
  let fb_plain = Flowpipe.final_box plain and fb = Flowpipe.final_box report.Verifier.pipe in
  Alcotest.(check (float 0.0)) "identical final lo" (Box.lo fb_plain).(0) (Box.lo fb).(0);
  Alcotest.(check (float 0.0)) "identical final hi" (Box.hi fb_plain).(0) (Box.hi fb).(0)

let test_nn_robust_blowup_uses_fallback_rung () =
  Fault.with_faults [ (0, Fault.Tm_blowup) ] (fun () ->
      let report =
        Verifier.nn_flowpipe_robust ~f:tiny_f ~delta:0.1 ~steps:5 ~net:tiny_net
          ~output_scale:1.0 ~method_:Verifier.Polar ~x0:tiny_x0 ()
      in
      Alcotest.(check bool) "a later rung answered" true
        (match report.Verifier.rung_index with Some i -> i >= 1 | None -> false);
      Alcotest.(check bool) "primary failure recorded" true
        (List.mem_assoc "POLAR" report.Verifier.failures);
      Alcotest.(check bool) "fault recorded" true
        (report.Verifier.fault = Some Fault.Tm_blowup);
      Alcotest.(check bool) "usable pipe" true
        (not (Flowpipe.diverged report.Verifier.pipe)))

(* ---------------- learner survival: one test per failure kind ---------------- *)

let acc_cfg =
  { Learner.default_config with Learner.max_iters = 5; alpha = 0.2; beta = 0.2; seed = 7 }

let acc_learn_under ?(domains = 1) ?cache faults =
  let module A = Dwv_systems.Acc in
  let module Pool = Dwv_parallel.Pool in
  let verify c = (A.verify_robust ?cache c).Verifier.pipe in
  Fault.with_faults ~seed:1 faults (fun () ->
      Pool.with_pool ~oversubscribe:true ~domains (fun pool ->
          let r =
            Learner.learn ~pool acc_cfg ~metric:Metrics.Geometric ~spec:A.spec ~verify
              ~init:A.initial_controller
          in
          (r, Fault.injected ())))

let check_survived r =
  Alcotest.(check bool) "finite parameters" true (finite_params r.Learner.controller);
  Alcotest.(check bool) "history recorded" true (List.length r.Learner.history >= 1);
  Alcotest.(check bool) "verdict delivered" true
    (List.mem r.Learner.verdict [ Verifier.Reach_avoid; Verifier.Unsafe; Verifier.Unknown ])

let test_learner_survives_nan_theta () =
  check_survived (fst (acc_learn_under [ (0, Fault.Nan_theta) ]))

let test_learner_survives_tm_blowup () =
  check_survived (fst (acc_learn_under [ (0, Fault.Tm_blowup) ]))

let test_learner_survives_deadline () =
  check_survived (fst (acc_learn_under [ (0, Fault.Deadline_hit); (3, Fault.Deadline_hit) ]))

let test_learner_survives_budget () =
  check_survived (fst (acc_learn_under [ (0, Fault.Budget_hit); (5, Fault.Budget_hit) ]))

(* Fault-plan call indices are pre-assigned before each parallel fan-out,
   so an injected fault must land on the same verifier call — and surface
   the same structured error — at any domain count. *)
let check_same_under_faults label ((a : Learner.result), fa) ((b : Learner.result), fb) =
  Alcotest.(check (array (float 0.0)))
    (label ^ ": identical theta")
    (Controller.params a.Learner.controller)
    (Controller.params b.Learner.controller);
  Alcotest.(check int) (label ^ ": same iterations") a.Learner.iterations b.Learner.iterations;
  Alcotest.(check int) (label ^ ": same verifier calls") a.Learner.verifier_calls
    b.Learner.verifier_calls;
  Alcotest.(check bool) (label ^ ": same verdict") true (a.Learner.verdict = b.Learner.verdict);
  Alcotest.(check (option string))
    (label ^ ": same stop kind")
    (Option.map Dwv_error.kind_name a.Learner.stopped)
    (Option.map Dwv_error.kind_name b.Learner.stopped);
  Alcotest.(check (list (pair int string)))
    (label ^ ": same injected faults")
    (List.map (fun (i, k) -> (i, Fault.kind_to_string k)) fa)
    (List.map (fun (i, k) -> (i, Fault.kind_to_string k)) fb)

let test_budget_fault_parity_across_domains () =
  let faults = [ (0, Fault.Budget_hit); (5, Fault.Budget_hit) ] in
  check_same_under_faults "budget fault" (acc_learn_under faults)
    (acc_learn_under ~domains:4 faults)

let test_nan_theta_fault_parity_across_domains () =
  let faults = [ (0, Fault.Nan_theta); (4, Fault.Nan_theta) ] in
  check_same_under_faults "nan-theta fault" (acc_learn_under faults)
    (acc_learn_under ~domains:4 faults)

let test_acc_zero_fault_learning_unchanged () =
  let module A = Dwv_systems.Acc in
  let plain =
    Learner.learn acc_cfg ~metric:Metrics.Geometric ~spec:A.spec ~verify:A.verify
      ~init:A.initial_controller
  in
  let robust =
    Learner.learn acc_cfg ~metric:Metrics.Geometric ~spec:A.spec
      ~verify:(fun c -> (A.verify_robust c).Verifier.pipe)
      ~init:A.initial_controller
  in
  Alcotest.(check int) "same iteration count" plain.Learner.iterations robust.Learner.iterations;
  Alcotest.(check bool) "same verdict" true (plain.Learner.verdict = robust.Learner.verdict);
  List.iter2
    (fun (p : Learner.history_point) (r : Learner.history_point) ->
      Alcotest.(check (float 0.0)) "same objective" p.Learner.objective r.Learner.objective)
    plain.Learner.history robust.Learner.history

(* Faulted learning on the nonlinear benchmarks, on short horizons so the
   whole ladder stays cheap: the loop must survive a NaN controller, a
   primary-rung blow-up and an up-front deadline in one run. *)
let nn_learn_under ~name ~f ~dim faults =
  let lo = Array.make dim 0.0 and hi = Array.make dim 0.02 in
  let x0 = Box.make ~lo ~hi in
  let far lo hi = I.make lo hi in
  let unsafe = Box.of_intervals (Array.make dim (far 5.0 6.0)) in
  let goal = Box.of_intervals (Array.make dim (far (-0.5) 0.5)) in
  let spec = Spec.make ~name ~x0 ~unsafe ~goal ~delta:0.1 ~steps:4 in
  let net =
    Mlp.create ~sizes:[ dim; 4; 1 ] ~acts:[ Activation.Tanh; Activation.Tanh ]
      (Rng.create 5)
  in
  let verify c =
    match c with
    | Controller.Net { net; output_scale } ->
      (Verifier.nn_flowpipe_robust ~order:2 ~disturbance_slots:4 ~f ~delta:0.1 ~steps:4
         ~net ~output_scale ~method_:Verifier.Polar ~x0 ())
        .Verifier.pipe
    | Controller.Linear _ -> Alcotest.fail "NN controller expected"
  in
  let cfg =
    { Learner.default_config with
      Learner.max_iters = 2; gradient_mode = Learner.Spsa 1; seed = 3 }
  in
  Fault.with_faults ~seed:2 faults (fun () ->
      Learner.learn cfg ~metric:Metrics.Geometric ~spec ~verify
        ~init:(Controller.net ~output_scale:1.0 net))

let mixed_faults =
  [ (0, Fault.Nan_theta); (1, Fault.Tm_blowup); (3, Fault.Deadline_hit) ]

let test_learner_survives_faults_oscillator () =
  check_survived
    (nn_learn_under ~name:"oscillator-fast" ~f:Dwv_systems.Oscillator.dynamics ~dim:2
       mixed_faults)

let test_learner_survives_faults_threed () =
  check_survived
    (nn_learn_under ~name:"threed-fast" ~f:Dwv_systems.Threed.dynamics ~dim:3 mixed_faults)

(* ---------------- non-finite score guard ---------------- *)

let test_nan_scores_skip_probes_not_gradient () =
  let module A = Dwv_systems.Acc in
  (* a pipe whose boxes carry NaN but which is NOT flagged diverged: the
     grading path would previously fold NaN into every gradient component *)
  let nan_iv = I.scale Float.infinity (I.make 0.0 1.0) in
  let nan_box = Box.of_intervals [| nan_iv; nan_iv |] in
  let nan_pipe =
    Flowpipe.make
      ~step_boxes:[| A.spec.Spec.x0; nan_box |]
      ~segment_boxes:[| nan_box |] ~delta:0.1 ~diverged:false
  in
  let cfg = { acc_cfg with Learner.max_iters = 2; gradient_mode = Learner.Coordinate } in
  let r =
    Learner.learn cfg ~metric:Metrics.Geometric ~spec:A.spec
      ~verify:(fun _ -> nan_pipe)
      ~init:A.initial_controller
  in
  (* 2 gradient rounds x 3 coordinate probes, every one non-finite *)
  Alcotest.(check int) "all probe pairs skipped" 6 r.Learner.skipped_probes;
  Alcotest.(check bool) "theta stays finite" true (finite_params r.Learner.controller);
  Alcotest.(check (array (float 0.0))) "theta untouched by NaN probes"
    (Controller.params A.initial_controller)
    (Controller.params r.Learner.controller)

let test_evaluate_nan_trajectory_is_unsafe () =
  let module O = Dwv_systems.Oscillator in
  let nan_controller _ = [| Float.nan |] in
  let r =
    Evaluate.rollout ~sys:O.sampled ~controller:nan_controller ~spec:O.spec [| -0.5; 0.5 |]
  in
  Alcotest.(check bool) "NaN rollout is not safe" false r.Evaluate.safe;
  Alcotest.(check bool) "NaN rollout reaches nothing" false r.Evaluate.reached

(* ---------------- certificate-cache faults ---------------- *)

module Cert = Dwv_cert.Cert
module Cert_cache = Dwv_cert.Cert_cache

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let fresh_cert_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dwv_faults_%s_%d" tag (Unix.getpid ()))
  in
  remove_tree dir;
  dir

(* The checker must reject EVERY seeded single-bit corruption, wherever
   the bit lands: flip one seeded bit of a real emitted certificate for
   25 different seeds and decode each copy. The FNV footer makes any
   substitution detectable, so none may parse. *)
let test_checker_rejects_every_seeded_corruption () =
  let module A = Dwv_systems.Acc in
  let dir = fresh_cert_dir "corrupt" in
  let cache = Cert_cache.create ~dir () in
  ignore (A.verify_robust ~cache A.initial_controller : Verifier.fallback_report);
  let path =
    match Cert_cache.last_store_path cache with
    | Some p -> p
    | None -> Alcotest.fail "no certificate stored"
  in
  let raw = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check bool) "clean bytes decode" true (Result.is_ok (Cert.decode raw));
  for seed = 0 to 24 do
    Fault.with_faults ~seed [] (fun () ->
        let bad = Fault.byte_corrupt raw in
        Alcotest.(check bool) "corruption changed a byte" true (bad <> raw);
        match Cert.decode bad with
        | Ok _ -> Alcotest.failf "seed %d: corrupted certificate decoded" seed
        | Error _ -> ())
  done;
  remove_tree dir

(* Under each injected cert fault the cache must degrade to a fresh
   computation, so the learner's result is bit-identical to the
   cache-disabled run — and the degradation must show up in the cache
   stats (rejects for corrupt/stale reads, io_failures for dead disks)
   while the unfaulted calls keep hitting. *)
let test_learner_bit_identical_under_cert_faults () =
  List.iter
    (fun kind ->
      let name = Fault.kind_to_string kind in
      let faults = [ (1, kind); (4, kind) ] in
      let baseline = acc_learn_under faults in
      let dir = fresh_cert_dir ("learn_" ^ name) in
      let cache = Cert_cache.create ~dir () in
      ignore (acc_learn_under ~cache []);
      Cert_cache.reset_stats cache;
      let cached = acc_learn_under ~cache faults in
      check_same_under_faults ("cert fault " ^ name) baseline cached;
      let s = Cert_cache.stats cache in
      (match kind with
      | Fault.Cert_corrupt | Fault.Cert_stale ->
        Alcotest.(check int) (name ^ ": both faulted reads rejected") 2
          s.Cert_cache.rejects
      | Fault.Cert_io ->
        Alcotest.(check bool) (name ^ ": io failures recorded") true
          (s.Cert_cache.io_failures >= 2)
      | _ -> Alcotest.fail "not a cert fault");
      Alcotest.(check bool) (name ^ ": clean calls still hit") true
        (s.Cert_cache.hits > 0);
      remove_tree dir)
    [ Fault.Cert_corrupt; Fault.Cert_stale; Fault.Cert_io ]

(* ---------------- budgeted initset search ---------------- *)

let test_initset_budget_rejects_remainder () =
  let module A = Dwv_systems.Acc in
  let now = ref 0.0 in
  let budget = Budget.create ~clock:(fun () -> !now) ~deadline:2.5 () in
  let c = A.initial_controller in
  let verify cell =
    now := !now +. 1.0;
    A.verify_from cell c
  in
  let r = Initset.search ~max_depth:2 ~budget ~verify ~goal:A.spec.Spec.goal ~x0:A.spec.Spec.x0 () in
  Alcotest.(check int) "stopped after three calls" 3 r.Initset.verifier_calls;
  (match r.Initset.stopped with
  | Some e -> Alcotest.(check string) "deadline recorded" "deadline" (Dwv_error.kind_name e)
  | None -> Alcotest.fail "expected the search to stop on the deadline");
  Alcotest.(check bool) "remainder conservatively rejected" true
    (List.length r.Initset.rejected > 0)

let suite =
  [
    Alcotest.test_case "deadline is a value" `Quick test_deadline_is_a_value;
    Alcotest.test_case "call budget is a value" `Quick test_call_budget_is_a_value;
    Alcotest.test_case "step budget is a value" `Quick test_step_budget_is_a_value;
    Alcotest.test_case "rk45 non-finite is a value" `Quick test_rk45_nonfinite_is_a_value;
    Alcotest.test_case "ladder falls through in order" `Quick test_ladder_falls_through_in_order;
    Alcotest.test_case "ladder spends call budget" `Quick test_ladder_spends_call_budget;
    Alcotest.test_case "fault plan scoped + deterministic" `Quick
      test_fault_plan_is_scoped_and_deterministic;
    Alcotest.test_case "nn nan weights is a value" `Quick test_nn_nan_weights_is_a_value;
    Alcotest.test_case "nn step budget stops flowpipe" `Quick test_nn_step_budget_stops_flowpipe;
    Alcotest.test_case "robust = plain when clean" `Quick
      test_nn_robust_substep_rung_equivalent_when_clean;
    Alcotest.test_case "blowup uses fallback rung" `Quick test_nn_robust_blowup_uses_fallback_rung;
    Alcotest.test_case "learner survives nan-theta" `Quick test_learner_survives_nan_theta;
    Alcotest.test_case "learner survives tm-blowup" `Quick test_learner_survives_tm_blowup;
    Alcotest.test_case "learner survives deadline" `Quick test_learner_survives_deadline;
    Alcotest.test_case "learner survives budget" `Quick test_learner_survives_budget;
    Alcotest.test_case "budget fault parity across domains" `Quick
      test_budget_fault_parity_across_domains;
    Alcotest.test_case "nan-theta fault parity across domains" `Quick
      test_nan_theta_fault_parity_across_domains;
    Alcotest.test_case "acc zero-fault learning unchanged" `Quick
      test_acc_zero_fault_learning_unchanged;
    Alcotest.test_case "learner survives faults (oscillator)" `Quick
      test_learner_survives_faults_oscillator;
    Alcotest.test_case "learner survives faults (threed)" `Quick
      test_learner_survives_faults_threed;
    Alcotest.test_case "nan scores skip probes" `Quick test_nan_scores_skip_probes_not_gradient;
    Alcotest.test_case "nan trajectory is unsafe" `Quick test_evaluate_nan_trajectory_is_unsafe;
    Alcotest.test_case "initset budget rejects remainder" `Quick
      test_initset_budget_rejects_remainder;
    Alcotest.test_case "checker rejects every seeded corruption" `Quick
      test_checker_rejects_every_seeded_corruption;
    Alcotest.test_case "learner bit-identical under cert faults" `Quick
      test_learner_bit_identical_under_cert_faults;
  ]

let () = Alcotest.run "dwv-faults" [ ("faults", suite) ]
