let cmp a b = Float.compare a b
