(* A deliberate engine disagreement: the regex float-of-string pattern
   refuses a '.' to the identifier's left (to dodge partial module-path
   matches), so the Stdlib-qualified spelling slips past it — while the
   AST engine normalizes the qualifier and fires. Differential mode must
   report this file. Kept out of the agreement tests via --exclude. *)

let parse s = Stdlib.float_of_string s
