let dangling =
