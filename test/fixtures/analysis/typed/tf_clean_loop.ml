(* Clean counterpart to tf_boxed_loop: same workload shape, but the
   output array is preallocated outside the loop, the accumulator lives
   in the array, and comparisons use specialized float operators on
   scalars. The profiler must report zero sites for [clean]. *)

let clean (xs : float array) (out : float array) =
  for i = 0 to Array.length xs - 1 do
    out.(i) <- (xs.(i) *. 3.0) +. 1.0;
    if out.(i) > 10.0 then out.(i) <- 10.0
  done
