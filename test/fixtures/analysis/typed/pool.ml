(* Fixture stand-in for the parallel pool: gives the profiler Pool.mapi
   call sites whose task closures it must inspect. *)

type t = unit

let create () = ()

let mapi (_ : t) f a = Array.mapi f a
