(* Interval mimic for the layer-5 rounding-flow fixtures: just enough
   surface for sf_ival.ml to exercise bound-constructor arguments,
   bound-typed record fields, the widen discharge, the midpoint
   heuristic classification, and local-let flow tracking. The shapes
   (names, the eps-scale widen) mirror lib/interval. *)

type t = { lo : float; hi : float }

let make lo hi = { lo; hi }
let of_point x = { lo = x; hi = x }
let lo t = t.lo
let hi t = t.hi

(* Root of trust, exactly like the real Interval.widen: the fixture
   test config carries the matching allow entry. *)
let widen ?(eps = 1e-14) t =
  let s = eps *. Float.max 1.0 (Float.max (Float.abs t.lo) (Float.abs t.hi)) in
  { lo = t.lo -. s; hi = t.hi +. s }

let mid t = 0.5 *. (t.lo +. t.hi)
let width t = t.hi -. t.lo
