(* Phys-equality exemption fixture. This unit canonicalizes to "Expr",
   so [equal] below is the hash-consing pattern the typed allowlist must
   exempt (t == t), while [bad] compares float arrays with (==) and must
   stay flagged. *)

type t = { tag : int; hash : int }

let equal (a : t) (b : t) = a == b

let bad (x : float array) (y : float array) = x == y
