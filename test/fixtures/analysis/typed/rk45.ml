(* Fixture kernel: the budget-consuming target every verified path must
   reach with a budget in scope. *)

let integrate ?budget ~f x =
  match budget with
  | Some b -> ( match Budget.check b with Ok () -> f x | Error _ -> x)
  | None -> f x
