(* Allocation-profile fixture: a grab-bag of hot-loop allocation
   patterns the profiler must classify. Every site here is intentional;
   the test pins down the expected class multiset. *)

(* Entry point: float ref accumulator, boxed-float let, per-iteration
   tuple / list / option / array / closure allocs, and polymorphic
   comparison on a float-bearing composite. *)
let hot (xs : float array) (ys : (float * float) array) =
  let acc = ref 0.0 in
  for i = 0 to Array.length xs - 1 do
    let scaled = xs.(i) *. 3.0 in
    let pair = (xs.(i), scaled) in
    let cell = [ xs.(i) ] in
    let opt = Some xs.(i) in
    let tmp = Array.make 2 xs.(i) in
    let f = fun v -> v +. scaled in
    if compare pair ys.(i) < 0 then acc := !acc +. f tmp.(0);
    ignore cell;
    ignore opt
  done;
  !acc

(* Entry point: Pool task capturing mutable state shared across domains. *)
let pool_hot (p : Pool.t) (xs : float array) =
  let hits = ref 0 in
  let out =
    Pool.mapi p
      (fun i x ->
        if x > 0.0 then incr hits;
        x +. float_of_int i)
      xs
  in
  (out, !hits)
