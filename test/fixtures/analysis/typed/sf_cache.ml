(* Layer-5 cache-purity fixture: a miniature fingerprint/validate stack
   with seeded determinism violations. test_sound.ml supplies the entry
   list and pins each finding; keep the layout stable. *)

let table : (int, float) Hashtbl.t = Hashtbl.create 16
let salt = ref 0

(* VIOLATION (transitive): reads the wall clock. *)
let stamp () = Unix.gettimeofday ()

let mix a b = (a * 31) + b

(* VIOLATION: clock read via stamp + unkeyed mutable global read. *)
let fingerprint (xs : int list) =
  let h = List.fold_left mix (int_of_float (stamp ())) xs in
  mix h !salt

(* VIOLATION: RNG state read on the validation path. *)
let jitter () = Random.float 1.0

let validate (key : int) (v : float) =
  let noisy = v +. jitter () in
  (match Hashtbl.find_opt table key with Some _ -> () | None -> ());
  noisy > 0.0

(* CLEAN: pure mixing path. *)
let pure_fingerprint (xs : int list) = List.fold_left mix 17 xs

(* Boundary demo: the cache helper reads the clock internally (think
   eviction timestamp), but the test config lists it as a trust
   boundary, so the closure must not descend into it. *)
let cache_find (k : int) =
  let _ = Unix.gettimeofday () in
  Hashtbl.find_opt table k

let check_cached (k : int) =
  match cache_find k with Some _ -> true | None -> false
