(* Fixture stand-in for the robust-layer budget: same shape the
   Budget_threading sinks expect (Budget.check / Budget.spend_steps). *)

type t = { mutable steps : int }

let create n = { steps = n }

let check b = if b.steps <= 0 then Error "budget exhausted" else Ok ()

let spend_steps b n =
  b.steps <- b.steps - n;
  if b.steps < 0 then Error "budget exhausted" else Ok ()
