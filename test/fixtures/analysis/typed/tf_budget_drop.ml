(* Negative budget-threading fixture, two distinct failures:

   - [verify] consults the budget itself but then calls [helper], which
     cannot take a budget at all, and [helper] reaches the kernel
     unbudgeted -> unbudgeted-target error.
   - [verify] also calls [middle], which *does* accept ?budget and
     consumes it, but the call omits the argument -> budget-drop error. *)

let helper ~f x = Rk45.integrate ~f x

let middle ?budget ~f x = Rk45.integrate ?budget ~f x

let verify ?budget x =
  (match budget with
  | Some b -> ( match Budget.check b with Ok () -> () | Error _ -> ())
  | None -> ());
  let a = helper ~f:(fun v -> v +. 1.0) x in
  let b = middle ~f:(fun v -> v -. 1.0) x in
  a +. b
