(* Layer-5 rounding-flow fixture: seeded violations next to clean
   shapes. test_sound.ml pins each site by line; keep the layout
   stable. *)

(* VIOLATION x2: raw arithmetic directly in bound-constructor args. *)
let bad_pad (t : Interval.t) (e : float) =
  Interval.make (Interval.lo t -. e) (Interval.hi t +. e)

(* VIOLATION: midpoint heuristic flowing into a bound via a local let. *)
let bad_mid_flow (t : Interval.t) =
  let m = Interval.mid t in
  Interval.make (Interval.lo t) m

(* CLEAN: the same raw arithmetic discharged through widen. *)
let ok_widened (t : Interval.t) (e : float) =
  Interval.widen (Interval.make (Interval.lo t -. e) (Interval.hi t +. e))

(* CLEAN: midpoint feeding a metric, never a bound. *)
let ok_mid_metric (t : Interval.t) = Interval.mid t *. 2.0

(* VIOLATION: raw arithmetic in a bound-typed record literal field. *)
let bad_record (t : Interval.t) (e : float) : Interval.t =
  { Interval.lo = t.Interval.lo -. e; hi = t.Interval.hi +. e }

(* ALLOWED: same shape as bad_mid_flow; the test config carries an
   allow entry for this function, so it must stay silent there. *)
let allowed_split (t : Interval.t) =
  let m = Interval.mid t in
  (Interval.make (Interval.lo t) m, Interval.make m (Interval.hi t))
