(* Positive budget-threading fixture: the budget enters at [verify],
   is spent there, and is passed down through [refine] to the kernel.
   Budget_threading.analyze on entry "Tf_budget_ok.verify" must report
   nothing. *)

let refine ?budget ~f x =
  let x' = Rk45.integrate ?budget ~f x in
  x' +. 1.0

let verify ?budget x =
  (match budget with
  | Some b -> ( match Budget.spend_steps b 1 with Ok () -> () | Error _ -> ())
  | None -> ());
  refine ?budget ~f:(fun v -> v *. 2.0) x
