let same a b = a == b
let distinct a b = a != b
