(* Exception-escape must-fire cases (analyzed with this module marked
   hot): a direct failwith escape (Error), a caller one hop away (Warn),
   and an invalid_arg contract raise (Info). *)

let step x = if x < 0.0 then failwith "negative input" else sqrt x

let total xs = List.fold_left (fun acc x -> acc +. step x) 0.0 xs

let check_dim n = if n = 0 then invalid_arg "dimension must be positive" else n
