let cmp a b = Stdlib.compare a b
