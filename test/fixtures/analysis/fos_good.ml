let parse s = float_of_string_opt s
