let parse s = float_of_string s
