let is_nan x = Float.is_nan x
let finite x = Float.is_finite x
