(* Exception-escape must-not-fire cases: a result-speaking function whose
   precondition raise is its contract, and a raise handled inside the
   same function. Silent even with this module marked hot (except the
   documented Info tier, which these avoid). *)

let step x = if x < 0.0 then Error "negative input" else Ok (sqrt x)

let clamped x = try if x < 0.0 then failwith "negative" else x with Failure _ -> 0.0

let total xs =
  List.fold_left
    (fun acc x -> match step x with Ok v -> acc +. v | Error _ -> acc)
    0.0 xs
