let same a b = Float.equal a b
let distinct a b = not (Float.equal a b)
