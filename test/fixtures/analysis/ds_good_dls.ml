(* The real DLS-memo shape (taylor_model.ml): the key's initializer
   builds a FRESH table, so each domain memoizes privately and tasks
   share nothing. The domain-safety lint must stay silent. *)

let memo_key : (int, float) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let lookup n =
  let table = Domain.DLS.get memo_key in
  match Hashtbl.find_opt table n with
  | Some v -> v
  | None ->
    let v = float_of_int n *. 2.0 in
    Hashtbl.add table n v;
    v

let run pool xs = Pool.map pool (fun x -> lookup x) xs
