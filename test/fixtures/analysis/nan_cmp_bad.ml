let is_nan x = x = nan
let below_nan x = x < Float.nan
