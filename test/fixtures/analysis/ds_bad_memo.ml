(* Reconstruction of the pre-parallelization memo-table bug: a module-level
   hash table read AND written from inside a Pool.map task with no
   mediation. The domain-safety lint must flag the Pool.map call site. *)

let memo : (int, float) Hashtbl.t = Hashtbl.create 64

let lookup n =
  match Hashtbl.find_opt memo n with
  | Some v -> v
  | None ->
    let v = float_of_int n *. 2.0 in
    Hashtbl.add memo n v;
    v

let run pool xs = Pool.map pool (fun x -> lookup x) xs
