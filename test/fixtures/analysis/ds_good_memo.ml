(* The fixed shape: same memo table, but every access goes through a
   Mutex.protect critical section (the accessor itself locks, as
   taylor_model.ml does). The domain-safety lint must stay silent. *)

let memo : (int, float) Hashtbl.t = Hashtbl.create 64
let memo_mu = Mutex.create ()

let lookup n =
  Mutex.protect memo_mu (fun () ->
      match Hashtbl.find_opt memo n with
      | Some v -> v
      | None ->
        let v = float_of_int n *. 2.0 in
        Hashtbl.add memo n v;
        v)

let hits = Atomic.make 0

let run pool xs =
  Pool.map pool
    (fun x ->
      Atomic.incr hits;
      lookup x)
    xs
