(* Counterfeit domain-local state: the DLS key's initializer closes over
   ONE shared table, so every domain gets the very same object and the
   "per-domain" guard is a fiction. The domain-safety lint must follow
   the initializer and flag the Pool.map call site. *)

let shared : (int, float) Hashtbl.t = Hashtbl.create 64
let memo_key = Domain.DLS.new_key (fun () -> shared)

let lookup n =
  let table = Domain.DLS.get memo_key in
  match Hashtbl.find_opt table n with
  | Some v -> v
  | None ->
    let v = float_of_int n *. 2.0 in
    Hashtbl.add table n v;
    v

let run pool xs = Pool.map pool (fun x -> lookup x) xs
