(* Tests for dwv_interval: interval arithmetic soundness (including
   qcheck properties: any point image lies in the interval image) and box
   set operations. *)

module I = Dwv_interval.Interval
module Box = Dwv_interval.Box

let check_float = Alcotest.(check (float 1e-12))

let iv lo hi = I.make lo hi

let test_make_validation () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make: lo > hi") (fun () ->
      ignore (I.make 1.0 0.0));
  Alcotest.check_raises "nan" (Invalid_argument "Interval.make: non-finite bound") (fun () ->
      ignore (I.make Float.nan 0.0))

let test_basic_accessors () =
  let t = iv 1.0 3.0 in
  check_float "mid" 2.0 (I.mid t);
  check_float "rad" 1.0 (I.rad t);
  check_float "width" 2.0 (I.width t);
  Alcotest.(check bool) "contains" true (I.contains t 2.5);
  Alcotest.(check bool) "not contains" false (I.contains t 3.5)

(* Rounding ops widen outward by an eps-scale slack (the layer-5
   soundness model), so expected values are matched up to that slack. *)
let eqw = I.equal ~eps:1e-12

let test_add_sub () =
  let a = iv 1.0 2.0 and b = iv (-1.0) 3.0 in
  Alcotest.(check bool) "add" true (eqw (I.add a b) (iv 0.0 5.0));
  Alcotest.(check bool) "sub" true (eqw (I.sub a b) (iv (-2.0) 3.0))

let test_mul_signs () =
  Alcotest.(check bool) "pos*pos" true (eqw (I.mul (iv 1.0 2.0) (iv 3.0 4.0)) (iv 3.0 8.0));
  Alcotest.(check bool) "neg*pos" true
    (eqw (I.mul (iv (-2.0) (-1.0)) (iv 3.0 4.0)) (iv (-8.0) (-3.0)));
  Alcotest.(check bool) "straddle" true
    (eqw (I.mul (iv (-1.0) 2.0) (iv (-3.0) 4.0)) (iv (-6.0) 8.0))

let test_sqr_tight () =
  (* sqr must be tighter than mul t t when t straddles zero *)
  let t = iv (-1.0) 2.0 in
  Alcotest.(check bool) "sqr lower bound 0" true (eqw (I.sqr t) (iv 0.0 4.0));
  Alcotest.(check bool) "sqr lo clamped" true (I.lo (I.sqr t) = 0.0);
  Alcotest.(check bool) "mul is looser" true (I.lo (I.mul t t) < 0.0)

let test_div_by_zero_raises () =
  Alcotest.check_raises "div" (Failure "Interval.inv: interval contains zero") (fun () ->
      ignore (I.div (iv 1.0 2.0) (iv (-1.0) 1.0)))

let test_pow_int () =
  Alcotest.(check bool) "cube of negative" true
    (eqw (I.pow_int (iv (-2.0) (-1.0)) 3) (iv (-8.0) (-1.0)));
  Alcotest.(check bool) "even power straddle" true
    (eqw (I.pow_int (iv (-2.0) 1.0) 2) (iv 0.0 4.0));
  Alcotest.(check bool) "power zero" true (I.equal (I.pow_int (iv (-2.0) 1.0) 0) I.one)

let test_intersect_hull () =
  let a = iv 0.0 2.0 and b = iv 1.0 3.0 in
  (match I.intersect a b with
  | Some m -> Alcotest.(check bool) "meet" true (I.equal m (iv 1.0 2.0))
  | None -> Alcotest.fail "expected overlap");
  Alcotest.(check bool) "disjoint" true (I.intersect (iv 0.0 1.0) (iv 2.0 3.0) = None);
  Alcotest.(check bool) "hull" true (I.equal (I.hull a b) (iv 0.0 3.0))

let test_distance_overlap () =
  check_float "gap" 1.0 (I.distance (iv 0.0 1.0) (iv 2.0 3.0));
  check_float "overlapping" 0.0 (I.distance (iv 0.0 2.0) (iv 1.0 3.0));
  check_float "overlap length" 1.0 (I.overlap_length (iv 0.0 2.0) (iv 1.0 3.0));
  check_float "no overlap" 0.0 (I.overlap_length (iv 0.0 1.0) (iv 2.0 3.0))

let test_sin_quadrants () =
  (* includes the max at pi/2 *)
  let s = I.sin_ (iv 0.0 3.0) in
  Alcotest.(check (float 1e-9)) "hi = 1" 1.0 (I.hi s);
  Alcotest.(check bool) "lo = min endpoint" true (I.lo s <= sin 3.0 +. 1e-9);
  (* a full period covers [-1,1] *)
  let full = I.sin_ (iv 0.0 7.0) in
  Alcotest.(check (float 1e-9)) "full lo" (-1.0) (I.lo full);
  Alcotest.(check (float 1e-9)) "full hi" 1.0 (I.hi full)

let test_monotone_functions () =
  let t = iv (-1.0) 1.0 in
  Alcotest.(check bool) "exp monotone" true
    (I.lo (I.exp_ t) <= exp (-1.0) && I.hi (I.exp_ t) >= exp 1.0);
  Alcotest.(check bool) "tanh monotone" true
    (I.lo (I.tanh_ t) <= tanh (-1.0) && I.hi (I.tanh_ t) >= tanh 1.0)

let test_relu () =
  Alcotest.(check bool) "straddle" true (I.equal (I.relu (iv (-1.0) 2.0)) (iv 0.0 2.0));
  Alcotest.(check bool) "negative" true (I.equal (I.relu (iv (-2.0) (-1.0))) I.zero)

(* Soundness property: for x in a, f x in F a (fundamental theorem of
   interval arithmetic), checked on a compound expression. *)
let prop_interval_soundness =
  QCheck.Test.make ~name:"interval eval contains point eval" ~count:500
    QCheck.(
      quad (float_range (-2.0) 2.0) (float_range 0.0 1.5) (float_range (-2.0) 2.0)
        (float_range 0.0 1.0))
    (fun (lo, w, x_frac, _) ->
      let a = iv lo (lo +. w) in
      let x = I.sample a ~t:(Float.abs (Float.rem x_frac 1.0)) in
      (* f(x) = sin(x)*x^2 + exp(tanh x) - relu x *)
      let fx = (sin x *. (x ** 2.0)) +. exp (tanh x) -. Float.max x 0.0 in
      let fa =
        I.sub (I.add (I.mul (I.sin_ a) (I.sqr a)) (I.exp_ (I.tanh_ a))) (I.relu a)
      in
      I.contains (I.widen ~eps:1e-9 fa) fx)

let prop_mul_contains_products =
  QCheck.Test.make ~name:"mul contains pointwise products" ~count:500
    QCheck.(
      quad (float_range (-3.0) 3.0) (float_range 0.0 2.0) (float_range (-3.0) 3.0)
        (float_range 0.0 2.0))
    (fun (a_lo, a_w, b_lo, b_w) ->
      let a = iv a_lo (a_lo +. a_w) and b = iv b_lo (b_lo +. b_w) in
      let p = I.mul a b in
      List.for_all
        (fun (x, y) -> I.contains (I.widen p) (x *. y))
        [ (a_lo, b_lo); (a_lo, b_lo +. b_w); (a_lo +. a_w, b_lo); (a_lo +. a_w, b_lo +. b_w) ])

(* Layer-5 containment oracle: every widened Interval op must contain
   the independent directed-rounding enclosure (Cert_ival, outward
   ulp-stepped) of the same operation — i.e. the eps-scale widening has
   to dominate directed rounding, not merely round-to-nearest. *)
module CIv = Dwv_cert.Cert_ival

let prop_widen_contains_directed =
  QCheck.Test.make ~name:"widened ops contain directed-rounding enclosure"
    ~count:500
    QCheck.(
      quad (float_range (-3.0) 3.0) (float_range 0.0 2.0) (float_range (-3.0) 3.0)
        (float_range 0.0 2.0))
    (fun (a_lo, a_w, b_lo, b_w) ->
      let a = iv a_lo (a_lo +. a_w) and b = iv b_lo (b_lo +. b_w) in
      let ca = CIv.of_interval a and cb = CIv.of_interval b in
      let contains i c = I.lo i <= CIv.lo c && CIv.hi c <= I.hi i in
      contains (I.add a b) (CIv.add ca cb)
      && contains (I.sub a b) (CIv.sub ca cb)
      && contains (I.mul a b) (CIv.mul ca cb)
      && contains (I.sqr a) (CIv.pow_int ca 2)
      && contains (I.pow_int a 3) (CIv.pow_int ca 3)
      && contains (I.scale 1.7 a) (CIv.scale 1.7 ca)
      && contains (I.exp_ a) (CIv.exp_ ca)
      && contains (I.tanh_ a) (CIv.tanh_ ca)
      && (I.contains b 0.0 || contains (I.div a b) (CIv.div ca cb)))

(* ---------------- boxes ---------------- *)

let box2 lo0 hi0 lo1 hi1 = Box.make ~lo:[| lo0; lo1 |] ~hi:[| hi0; hi1 |]

let test_box_volume () =
  check_float "volume" 6.0 (Box.volume (box2 0.0 2.0 0.0 3.0))

let test_box_contains () =
  let b = box2 0.0 1.0 0.0 1.0 in
  Alcotest.(check bool) "inside" true (Box.contains b [| 0.5; 0.5 |]);
  Alcotest.(check bool) "outside" false (Box.contains b [| 1.5; 0.5 |]);
  Alcotest.(check bool) "boundary" true (Box.contains b [| 1.0; 1.0 |])

let test_box_intersection_volume () =
  let a = box2 0.0 2.0 0.0 2.0 and b = box2 1.0 3.0 1.0 3.0 in
  check_float "overlap volume" 1.0 (Box.intersection_volume a b);
  check_float "disjoint volume" 0.0
    (Box.intersection_volume a (box2 5.0 6.0 5.0 6.0))

let test_box_sq_distance () =
  let a = box2 0.0 1.0 0.0 1.0 in
  check_float "touching" 0.0 (Box.sq_distance a (box2 1.0 2.0 0.0 1.0));
  check_float "axis gap" 4.0 (Box.sq_distance a (box2 3.0 4.0 0.0 1.0));
  check_float "diagonal gap" 8.0 (Box.sq_distance a (box2 3.0 4.0 3.0 4.0))

let test_box_subset () =
  let outer = box2 0.0 10.0 0.0 10.0 in
  Alcotest.(check bool) "inside" true (Box.subset (box2 1.0 2.0 1.0 2.0) outer);
  Alcotest.(check bool) "partial" false (Box.subset (box2 9.0 11.0 1.0 2.0) outer)

let test_box_bisect () =
  let b = box2 0.0 4.0 0.0 1.0 in
  let left, right = Box.bisect b in
  (* splits the widest dimension (0) at its midpoint *)
  check_float "left hi" 2.0 (I.hi (Box.get left 0));
  check_float "right lo" 2.0 (I.lo (Box.get right 0));
  check_float "volume conserved" (Box.volume b) (Box.volume left +. Box.volume right)

let test_box_partition () =
  let b = box2 0.0 2.0 0.0 2.0 in
  let cells = Box.partition [| 2; 2 |] b in
  Alcotest.(check int) "cell count" 4 (List.length cells);
  let total = List.fold_left (fun acc c -> acc +. Box.volume c) 0.0 cells in
  check_float "volume conserved" 4.0 total

let test_box_corners () =
  let b = box2 0.0 1.0 2.0 3.0 in
  Alcotest.(check int) "corner count" 4 (List.length (Box.corners b))

let test_box_bloat () =
  let b = box2 0.0 1.0 0.0 1.0 in
  let g = Box.bloat 0.5 b in
  check_float "bloated volume" 4.0 (Box.volume g);
  Alcotest.check_raises "negative" (Invalid_argument "Box.bloat: negative epsilon")
    (fun () -> ignore (Box.bloat (-1.0) b))

let test_box_normalize_roundtrip () =
  let b = box2 (-1.0) 3.0 2.0 8.0 in
  let z = [| 0.5; -0.25 |] in
  let x = Box.denormalize b z in
  Alcotest.(check (array (float 1e-12))) "roundtrip" z (Box.normalize b x)

let test_box_hull () =
  let h = Box.hull (box2 0.0 1.0 0.0 1.0) (box2 2.0 3.0 (-1.0) 0.5) in
  Alcotest.(check bool) "hull" true (Box.equal h (box2 0.0 3.0 (-1.0) 1.0))

let prop_partition_cells_subset =
  QCheck.Test.make ~name:"partition cells are subsets" ~count:100
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (p, q) ->
      let b = box2 (-1.0) 2.0 0.0 5.0 in
      let cells = Box.partition [| p; q |] b in
      List.length cells = p * q
      && List.for_all (fun c -> Box.subset c (Box.bloat 1e-9 b)) cells)

let prop_sample_in_box =
  QCheck.Test.make ~name:"samples land inside the box" ~count:200
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Dwv_util.Rng.create seed in
      let b = box2 (-2.0) (-1.0) 3.0 7.0 in
      Box.contains b (Box.sample rng b))

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "accessors" `Quick test_basic_accessors;
    Alcotest.test_case "add/sub" `Quick test_add_sub;
    Alcotest.test_case "mul signs" `Quick test_mul_signs;
    Alcotest.test_case "sqr tight" `Quick test_sqr_tight;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero_raises;
    Alcotest.test_case "pow_int" `Quick test_pow_int;
    Alcotest.test_case "intersect/hull" `Quick test_intersect_hull;
    Alcotest.test_case "distance/overlap" `Quick test_distance_overlap;
    Alcotest.test_case "sin quadrants" `Quick test_sin_quadrants;
    Alcotest.test_case "monotone functions" `Quick test_monotone_functions;
    Alcotest.test_case "relu" `Quick test_relu;
    QCheck_alcotest.to_alcotest prop_interval_soundness;
    QCheck_alcotest.to_alcotest prop_mul_contains_products;
    QCheck_alcotest.to_alcotest prop_widen_contains_directed;
    Alcotest.test_case "box volume" `Quick test_box_volume;
    Alcotest.test_case "box contains" `Quick test_box_contains;
    Alcotest.test_case "box intersection volume" `Quick test_box_intersection_volume;
    Alcotest.test_case "box sq distance" `Quick test_box_sq_distance;
    Alcotest.test_case "box subset" `Quick test_box_subset;
    Alcotest.test_case "box bisect" `Quick test_box_bisect;
    Alcotest.test_case "box partition" `Quick test_box_partition;
    Alcotest.test_case "box corners" `Quick test_box_corners;
    Alcotest.test_case "box bloat" `Quick test_box_bloat;
    Alcotest.test_case "box normalize roundtrip" `Quick test_box_normalize_roundtrip;
    Alcotest.test_case "box hull" `Quick test_box_hull;
    QCheck_alcotest.to_alcotest prop_partition_cells_subset;
    QCheck_alcotest.to_alcotest prop_sample_in_box;
  ]
