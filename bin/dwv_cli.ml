(* dwv: command-line front end to the design-while-verify framework.

     dwv info     -s acc                    print a system's spec
     dwv verify   -s oscillator -t polar    verify the warm-start design
     dwv learn    -s acc -m G               run Algorithm 1
     dwv simulate -s threed -n 500          Monte-Carlo SC/GR rates
     dwv initset  -s acc                    run Algorithm 2
     dwv cert emit -s acc --cert-dir D      verify + deposit a certificate
     dwv cert check FILE -s acc             independently re-check a certificate
     dwv cert gc --cert-dir D --keep N      bound the on-disk store *)

module Box = Dwv_interval.Box
module Verifier = Dwv_reach.Verifier
module Flowpipe = Dwv_reach.Flowpipe
module Spec = Dwv_core.Spec
module Controller = Dwv_core.Controller
module Learner = Dwv_core.Learner
module Metrics = Dwv_core.Metrics
module Evaluate = Dwv_core.Evaluate
module Initset = Dwv_core.Initset
module Rng = Dwv_util.Rng
module Dwv_error = Dwv_robust.Dwv_error
module Budget = Dwv_robust.Budget
module Fault = Dwv_robust.Fault
module Pool = Dwv_parallel.Pool
module Cert_cache = Dwv_cert.Cert_cache
module Cert_check = Dwv_cert.Cert_check

(* Uniform handle over the three benchmark systems. *)
type system = {
  spec : Spec.t;
  sampled : Dwv_ode.Sampled_system.t;
  dynamics : Dwv_expr.Expr.t array;
  init : Rng.t -> Controller.t;
  verify : Verifier.nn_method option -> Controller.t -> Flowpipe.t;
  verify_from : Verifier.nn_method option -> Box.t -> Controller.t -> Flowpipe.t;
  verify_robust :
    Verifier.nn_method option -> Budget.t option -> Cert_cache.t option ->
    Controller.t -> Verifier.fallback_report;
  verify_robust_from :
    Verifier.nn_method option -> Budget.t option -> Cert_cache.t option ->
    Box.t -> Controller.t -> Verifier.fallback_report;
  sim : Controller.t -> float array -> float array;
  default_cfg : Learner.config;
}

let acc_system =
  let module A = Dwv_systems.Acc in
  {
    spec = A.spec;
    sampled = A.sampled;
    dynamics = A.dynamics;
    init = (fun _ -> A.initial_controller);
    verify = (fun _ c -> A.verify c);
    verify_from = (fun _ cell c -> A.verify_from cell c);
    verify_robust = (fun _ budget cache c -> A.verify_robust ?budget ?cache c);
    verify_robust_from =
      (fun _ budget cache cell c -> A.verify_robust_from ?budget ?cache cell c);
    sim = A.sim_controller;
    default_cfg = { Learner.default_config with max_iters = 150; alpha = 0.2; beta = 0.2 };
  }

let nn_cfg =
  { Learner.default_config with
    max_iters = 20; alpha = 0.05; beta = 0.05; perturbation = 0.02;
    gradient_mode = Learner.Spsa 2 }

let oscillator_system =
  let module O = Dwv_systems.Oscillator in
  {
    spec = O.spec;
    sampled = O.sampled;
    dynamics = O.dynamics;
    init = (fun rng -> O.pretrained_controller rng);
    verify = (fun m c -> O.verify ?method_:m c);
    verify_from = (fun m cell c -> O.verify_from ?method_:m cell c);
    verify_robust = (fun m budget cache c -> O.verify_robust ?method_:m ?budget ?cache c);
    verify_robust_from =
      (fun m budget cache cell c -> O.verify_robust_from ?method_:m ?budget ?cache cell c);
    sim = O.sim_controller;
    default_cfg = nn_cfg;
  }

let threed_system =
  let module T = Dwv_systems.Threed in
  {
    spec = T.spec;
    sampled = T.sampled;
    dynamics = T.dynamics;
    init = (fun rng -> T.pretrained_controller rng);
    verify = (fun m c -> T.verify ?method_:m c);
    verify_from = (fun m cell c -> T.verify_from ?method_:m cell c);
    verify_robust = (fun m budget cache c -> T.verify_robust ?method_:m ?budget ?cache c);
    verify_robust_from =
      (fun m budget cache cell c -> T.verify_robust_from ?method_:m ?budget ?cache cell c);
    sim = T.sim_controller;
    default_cfg = nn_cfg;
  }

let pendulum_system =
  let module P = Dwv_systems.Pendulum in
  {
    spec = P.spec;
    sampled = P.sampled;
    dynamics = P.dynamics;
    init = (fun rng -> P.pretrained_controller rng);
    verify = (fun m c -> P.verify ?method_:m c);
    verify_from = (fun m cell c -> P.verify_from ?method_:m cell c);
    verify_robust = (fun m budget cache c -> P.verify_robust ?method_:m ?budget ?cache c);
    verify_robust_from =
      (fun m budget cache cell c -> P.verify_robust_from ?method_:m ?budget ?cache cell c);
    sim = P.sim_controller;
    default_cfg = nn_cfg;
  }

let system_of_name = function
  | "acc" -> Ok acc_system
  | "oscillator" | "osc" -> Ok oscillator_system
  | "threed" | "3d" -> Ok threed_system
  | "pendulum" -> Ok pendulum_system
  | s ->
    Error (`Msg ("unknown system: " ^ s ^ " (expected acc | oscillator | threed | pendulum)"))

let method_of_name system_name = function
  | "polar" -> Ok (Some Verifier.Polar)
  | "reachnn" ->
    let n = if system_name = "threed" || system_name = "3d" then 3 else 2 in
    Ok (Some (Verifier.Bernstein (Dwv_reach.Nn_reach_bernstein.default_config ~n)))
  | "default" -> Ok None
  | s -> Error (`Msg ("unknown tool: " ^ s ^ " (expected polar | reachnn)"))

let metric_of_name = function
  | "G" | "g" | "geometric" -> Ok Metrics.Geometric
  | "W" | "w" | "wasserstein" -> Ok Metrics.Wasserstein
  | s -> Error (`Msg ("unknown metric: " ^ s ^ " (expected G | W)"))

open Cmdliner

let system_arg =
  let doc = "Benchmark system: acc, oscillator or threed." in
  Arg.(required & opt (some string) None & info [ "s"; "system" ] ~docv:"SYSTEM" ~doc)

let tool_arg =
  let doc = "Verification tool for NN systems: polar or reachnn." in
  Arg.(value & opt string "default" & info [ "t"; "tool" ] ~docv:"TOOL" ~doc)

let seed_arg =
  let doc = "Random seed (controller init, SPSA directions, rollouts)." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)

let or_die = function Ok v -> v | Error (`Msg m) -> Fmt.epr "dwv: %s@." m; exit 2

let domains_arg =
  let doc =
    "Domains for parallel fan-out of gradient probes, frontier cells and \
     rollouts (1 = the exact sequential code path; results are identical \
     at any value). Defaults to the machine's recommended domain count."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let with_domain_pool domains f =
  let domains = Option.value domains ~default:(Pool.default_domains ()) in
  Pool.with_pool ~domains f

let controller_arg =
  let doc = "Load a saved controller instead of the warm-start design." in
  Arg.(value & opt (some file) None & info [ "c"; "controller" ] ~docv:"FILE" ~doc)

let initial_controller sys ~controller_file ~seed =
  match controller_file with
  | Some path -> Controller.load path
  | None -> sys.init (Rng.create seed)

(* ---- fault-tolerance options shared by verify and learn ---- *)

let deadline_arg =
  let doc = "Wall-clock deadline in seconds for the whole run." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let max_calls_arg =
  let doc = "Verifier-call budget for the whole run." in
  Arg.(value & opt (some int) None & info [ "max-calls" ] ~docv:"N" ~doc)

let fault_arg =
  let doc =
    "Inject a fault at verifier call $(i,IDX) (0-based): IDX:KIND with KIND one of \
     nan, blowup, deadline, budget, cert-corrupt, cert-stale, cert-io. Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "fault" ] ~docv:"IDX:KIND" ~doc)

let cert_dir_arg =
  let doc =
    "Consult (and grow) a crash-safe certificate cache rooted at this directory: \
     verifier calls whose stored certificate re-validates are replayed bit-exactly \
     instead of recomputed."
  in
  Arg.(value & opt (some string) None & info [ "cert-dir" ] ~docv:"DIR" ~doc)

let cache_of_dir = Option.map (fun dir -> Cert_cache.create ~dir ())

let report_cache_stats = function
  | None -> ()
  | Some cache -> Fmt.pr "certificate cache: %a@." Cert_cache.pp_stats (Cert_cache.stats cache)

let plain_arg =
  let doc = "Bypass the fallback ladder (plain single-method verifier)." in
  Arg.(value & flag & info [ "plain" ] ~doc)

let parse_fault s =
  match String.index_opt s ':' with
  | None -> Error (`Msg ("bad --fault " ^ s ^ " (expected IDX:KIND)"))
  | Some i -> (
    let idx = String.sub s 0 i in
    let kind = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt idx, Fault.kind_of_string kind) with
    | Some idx, Some kind when idx >= 0 -> Ok (idx, kind)
    | _ ->
      Error
        (`Msg
          ("bad --fault " ^ s ^ " (expected IDX:KIND, KIND in nan | blowup | \
            deadline | budget | cert-corrupt | cert-stale | cert-io)")))

let parse_faults specs = List.map (fun s -> or_die (parse_fault s)) specs

let budget_of ~deadline ~max_calls =
  match (deadline, max_calls) with
  | None, None -> None
  | _ -> Some (Budget.create ?deadline ?max_calls ())

(* Run [f] with the fault plan armed (if any), returning its result plus
   the faults that actually fired. *)
let with_fault_plan ~seed faults f =
  if faults = [] then (f (), [])
  else
    Fault.with_faults ~seed faults (fun () ->
        let r = f () in
        (r, Fault.injected ()))

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let pp_tally ppf tbl =
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let entries = List.sort (fun (_, a) (_, b) -> compare b a) entries in
  Fmt.(list ~sep:sp (pair ~sep:(any "=") string int)) ppf entries

let report_robustness ~rungs ~failures ~injected () =
  if Hashtbl.length rungs > 0 then Fmt.pr "fallback rungs: %a@." pp_tally rungs;
  if Hashtbl.length failures > 0 then
    Fmt.pr "verifier failures: %a@." pp_tally failures;
  List.iter
    (fun (i, k) -> Fmt.pr "injected fault at call %d: %s@." i (Fault.kind_to_string k))
    injected

let info_cmd =
  let run name =
    let sys = or_die (system_of_name name) in
    Fmt.pr "%a@." Spec.pp sys.spec
  in
  Cmd.v (Cmd.info "info" ~doc:"Print a benchmark system's reach-avoid specification")
    Term.(const run $ system_arg)

let verify_cmd =
  let run name tool seed controller_file deadline fault_specs plain cert_dir =
    let sys = or_die (system_of_name name) in
    let method_ = or_die (method_of_name name tool) in
    let faults = parse_faults fault_specs in
    let c = initial_controller sys ~controller_file ~seed in
    let cache = cache_of_dir cert_dir in
    let t0 = Sys.time () in
    let pipe, injected =
      if plain then (sys.verify method_ c, [])
      else begin
        let budget = budget_of ~deadline ~max_calls:None in
        let report, injected =
          with_fault_plan ~seed faults (fun () -> sys.verify_robust method_ budget cache c)
        in
        (match report.Verifier.rung with
        | Some rung when report.Verifier.rung_index <> Some 0 ->
          Fmt.pr "verdict produced by fallback rung: %s@." rung
        | _ -> ());
        List.iter
          (fun (rung, e) ->
            Fmt.pr "rung %s failed: %a@." rung Dwv_error.pp e)
          report.Verifier.failures;
        (report.Verifier.pipe, injected)
      end
    in
    let verdict = Verifier.check ~unsafe:sys.spec.Spec.unsafe ~goal:sys.spec.Spec.goal pipe in
    List.iter
      (fun (i, k) -> Fmt.pr "injected fault at call %d: %s@." i (Fault.kind_to_string k))
      injected;
    report_cache_stats cache;
    Fmt.pr "%a@.verdict: %a (%.2fs cpu)@." Flowpipe.pp pipe Verifier.pp_verdict verdict
      (Sys.time () -. t0)
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify a design once (warm start, or a saved controller)")
    Term.(
      const run $ system_arg $ tool_arg $ seed_arg $ controller_arg $ deadline_arg
      $ fault_arg $ plain_arg $ cert_dir_arg)

let learn_cmd =
  let metric_arg =
    Arg.(value & opt string "G" & info [ "m"; "metric" ] ~docv:"METRIC" ~doc:"G or W.")
  in
  let iters_arg =
    Arg.(value & opt (some int) None & info [ "iters" ] ~docv:"N" ~doc:"Iteration budget.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Save the learned controller to this file.")
  in
  let run name tool metric_name iters seed controller_file save deadline max_calls
      fault_specs plain domains cert_dir =
    let sys = or_die (system_of_name name) in
    let method_ = or_die (method_of_name name tool) in
    let metric = or_die (metric_of_name metric_name) in
    let faults = parse_faults fault_specs in
    let cfg =
      match iters with
      | Some n -> { sys.default_cfg with Learner.max_iters = n; seed }
      | None -> { sys.default_cfg with seed }
    in
    let budget = budget_of ~deadline ~max_calls in
    let cache = cache_of_dir cert_dir in
    let rungs = Hashtbl.create 8 and failures = Hashtbl.create 8 in
    let tally_mu = Mutex.create () in
    let verify c =
      if plain then sys.verify method_ c
      else begin
        let report = sys.verify_robust method_ budget cache c in
        Mutex.lock tally_mu;
        bump rungs (Option.value ~default:"none" report.Verifier.rung);
        List.iter
          (fun (_, e) -> bump failures (Dwv_error.kind_name e))
          report.Verifier.failures;
        Mutex.unlock tally_mu;
        report.Verifier.pipe
      end
    in
    let r, injected =
      with_fault_plan ~seed faults (fun () ->
          with_domain_pool domains (fun pool ->
              Learner.learn ?budget ~pool cfg ~metric ~spec:sys.spec ~verify
                ~init:(initial_controller sys ~controller_file ~seed)))
    in
    Fmt.pr "CI = %d (%d verifier calls), verdict: %a@." r.Learner.iterations
      r.Learner.verifier_calls Verifier.pp_verdict r.Learner.verdict;
    Fmt.pr "final reachable box: %a@." Box.pp (Flowpipe.final_box r.Learner.pipe);
    List.iter
      (fun (h : Learner.history_point) ->
        Fmt.pr "  it %2d: objective=%.5g safety=%.5g goal=%.5g %a@." h.Learner.iter
          h.Learner.objective h.Learner.scores.Metrics.safety h.Learner.scores.Metrics.goal
          Verifier.pp_verdict h.Learner.verdict)
      r.Learner.history;
    report_robustness ~rungs ~failures ~injected ();
    report_cache_stats cache;
    if r.Learner.skipped_probes > 0 then
      Fmt.pr "gradient probes skipped (non-finite scores): %d@." r.Learner.skipped_probes;
    (match r.Learner.stopped with
    | Some e -> Fmt.pr "stopped early: %a@." Dwv_error.pp e
    | None -> ());
    match save with
    | Some path ->
      Controller.save path r.Learner.controller;
      Fmt.pr "saved controller to %s@." path
    | None -> ()
  in
  Cmd.v (Cmd.info "learn" ~doc:"Run Algorithm 1 (verification-in-the-loop learning)")
    Term.(
      const run $ system_arg $ tool_arg $ metric_arg $ iters_arg $ seed_arg $ controller_arg
      $ save_arg $ deadline_arg $ max_calls_arg $ fault_arg $ plain_arg $ domains_arg
      $ cert_dir_arg)

let simulate_cmd =
  let n_arg = Arg.(value & opt int 500 & info [ "n" ] ~docv:"N" ~doc:"Number of rollouts.") in
  let run name n seed controller_file domains =
    let sys = or_die (system_of_name name) in
    let c = initial_controller sys ~controller_file ~seed in
    let rng = Rng.create (seed + 1) in
    let rates =
      with_domain_pool domains (fun pool ->
          Evaluate.rates ~n ~pool ~rng ~sys:sys.sampled ~controller:(sys.sim c)
            ~spec:sys.spec ())
    in
    Fmt.pr "%a@." Evaluate.pp_rates rates
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Monte-Carlo SC/GR rates of a design")
    Term.(const run $ system_arg $ n_arg $ seed_arg $ controller_arg $ domains_arg)

let initset_cmd =
  let depth_arg =
    Arg.(value & opt int 3 & info [ "depth" ] ~docv:"D" ~doc:"Max bisection depth.")
  in
  let run name tool depth seed controller_file domains cert_dir =
    let sys = or_die (system_of_name name) in
    let method_ = or_die (method_of_name name tool) in
    let c = initial_controller sys ~controller_file ~seed in
    let cache = cache_of_dir cert_dir in
    (* with a cache the per-cell verifier is the robust one (certificate
       hits replay bit-exactly); without one we keep the plain verifier *)
    let verify cell =
      match cache with
      | None -> sys.verify_from method_ cell c
      | Some _ ->
        (sys.verify_robust_from method_ None cache cell c).Verifier.pipe
    in
    let r =
      with_domain_pool domains (fun pool ->
          Initset.search ~max_depth:depth ~pool ~verify
            ~goal:sys.spec.Spec.goal ~x0:sys.spec.Spec.x0 ())
    in
    report_cache_stats cache;
    Fmt.pr "%a@." Initset.pp_result r
  in
  Cmd.v (Cmd.info "initset" ~doc:"Run Algorithm 2 (reach-avoid initial-set search)")
    Term.(
      const run $ system_arg $ tool_arg $ depth_arg $ seed_arg $ controller_arg $ domains_arg
      $ cert_dir_arg)

(* ---- certificate tooling: emit / check / gc ---- *)

let cert_emit_cmd =
  let dir_arg =
    let doc = "Certificate store the emitted proof is deposited in." in
    Arg.(required & opt (some string) None & info [ "cert-dir" ] ~docv:"DIR" ~doc)
  in
  let run name tool seed controller_file dir =
    let sys = or_die (system_of_name name) in
    let method_ = or_die (method_of_name name tool) in
    let c = initial_controller sys ~controller_file ~seed in
    let cache = Cert_cache.create ~dir () in
    let report = sys.verify_robust method_ None (Some cache) c in
    let verdict =
      Verifier.check ~unsafe:sys.spec.Spec.unsafe ~goal:sys.spec.Spec.goal
        report.Verifier.pipe
    in
    Fmt.pr "verdict: %a@." Verifier.pp_verdict verdict;
    report_cache_stats (Some cache);
    match Cert_cache.last_store_path cache with
    | Some path -> Fmt.pr "certificate: %s@." path
    | None ->
      (match report.Verifier.rung with
      | Some rung when rung = Dwv_robust.Robust_verify.cache_rung_name ->
        Fmt.pr "certificate already cached (validated hit)@."
      | _ ->
        Fmt.epr "dwv: no certificate emitted (verification did not complete cleanly)@.";
        exit 1)
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Verify a design and deposit a replayable proof certificate")
    Term.(const run $ system_arg $ tool_arg $ seed_arg $ controller_arg $ dir_arg)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let cert_check_cmd =
  let file_arg =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Certificate file.")
  in
  let sys_arg =
    let doc =
      "System whose dynamics the Full-level flow replay uses; omit for a \
       structural (Quick-level) check only."
    in
    Arg.(value & opt (some string) None & info [ "s"; "system" ] ~docv:"SYSTEM" ~doc)
  in
  let run path sys_name =
    let bytes =
      try read_file path
      with Sys_error m ->
        Fmt.epr "dwv: %s@." m;
        exit 2
    in
    let level, f =
      match sys_name with
      | None -> (Cert_check.Quick, None)
      | Some name ->
        let sys = or_die (system_of_name name) in
        (Cert_check.Full, Some sys.dynamics)
    in
    let verdict, report = Cert_check.validate ~level ?f bytes in
    Fmt.pr "%s (%d steps checked, %d unchecked)@."
      (Cert_check.verdict_check_to_string verdict)
      report.Cert_check.checked report.Cert_check.unchecked;
    match verdict with Cert_check.Valid -> () | _ -> exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Independently re-check a certificate with directed-rounding interval \
          arithmetic (exit 1 unless Valid)")
    Term.(const run $ file_arg $ sys_arg)

let cert_gc_cmd =
  let dir_arg =
    let doc = "Certificate store to bound." in
    Arg.(required & opt (some string) None & info [ "cert-dir" ] ~docv:"DIR" ~doc)
  in
  let keep_arg =
    Arg.(
      value & opt int 256
      & info [ "keep" ] ~docv:"N" ~doc:"Keep the N most recently written entries.")
  in
  let run dir keep =
    let cache = Cert_cache.create ~dir () in
    let removed = Cert_cache.gc cache ~keep in
    Fmt.pr "removed %d certificate(s) from %s@." removed dir
  in
  Cmd.v (Cmd.info "gc" ~doc:"Delete all but the most recent N cached certificates")
    Term.(const run $ dir_arg $ keep_arg)

let cert_cmd =
  Cmd.group
    (Cmd.info "cert" ~doc:"Emit, independently re-check and garbage-collect proof certificates")
    [ cert_emit_cmd; cert_check_cmd; cert_gc_cmd ]

(* ---- scenario farm ---- *)

module Scenario = Dwv_scenario.Scenario
module Scn_registry = Dwv_scenario.Scn_registry
module Scn_fuzz = Dwv_scenario.Scn_fuzz

let scenario_entry name file =
  match (name, file) with
  | Some n, None -> (
    match Scn_registry.find n with
    | Some e -> e
    | None ->
      (* not a built-in: treat the name as a DSL file path *)
      if Sys.file_exists n then Scn_registry.of_file n
      else begin
        Fmt.epr "dwv: unknown scenario %s (built-ins: %s)@." n
          (String.concat ", " (Scn_registry.names ()));
        exit 2
      end)
  | None, Some path -> Scn_registry.of_file path
  | _ ->
    Fmt.epr "dwv: give exactly one of -s NAME or --file FILE@.";
    exit 2

let scenario_name_arg =
  let doc = "Built-in scenario name (acc, pendulum, oscillator, threed) or a DSL file." in
  Arg.(value & opt (some string) None & info [ "s"; "scenario" ] ~docv:"NAME" ~doc)

let scenario_file_arg =
  let doc = "Scenario DSL file to load." in
  Arg.(value & opt (some file) None & info [ "file" ] ~docv:"FILE" ~doc)

let scenario_list_cmd =
  let run () =
    List.iter
      (fun (name, e) ->
        Fmt.pr "%-12s %a@." name Scenario.pp e.Scn_registry.scenario)
      Scn_registry.builtins
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in scenarios of the farm")
    Term.(const run $ const ())

let scenario_run_cmd =
  let run name file seed controller_file deadline max_calls cert_dir rollouts =
    let entry = scenario_entry name file in
    let scn = entry.Scn_registry.scenario in
    Fmt.pr "scenario %a@." Scenario.pp scn;
    let c =
      match controller_file with
      | Some path -> Controller.load path
      | None -> entry.Scn_registry.init (Rng.create seed)
    in
    let budget = budget_of ~deadline ~max_calls in
    let cache = cache_of_dir cert_dir in
    let t0 = Unix.gettimeofday () in
    let report = entry.Scn_registry.verify_robust ?budget ?cache c in
    let dt = Unix.gettimeofday () -. t0 in
    let fb = report.Dwv_scenario.Scn_verify.fallback in
    Fmt.pr "verdict: %a (rung %s, %.3f s)@." Verifier.pp_verdict
      report.Dwv_scenario.Scn_verify.verdict
      (Option.value fb.Verifier.rung ~default:"-")
      dt;
    (match fb.Verifier.error with
    | Some e -> Fmt.pr "failure: %a@." Dwv_error.pp e
    | None -> ());
    let rates =
      Evaluate.rates ~n:rollouts
        ~avoid:(Scenario.avoid_total scn)
        ~rng:(Rng.create (seed + 1))
        ~sys:(Scenario.sampled scn)
        ~controller:(entry.Scn_registry.sim c)
        ~spec:(Scenario.spec scn) ()
    in
    Fmt.pr "%a@." Evaluate.pp_rates rates;
    report_cache_stats cache
  in
  let rollouts_arg =
    Arg.(value & opt int 200 & info [ "n" ] ~docv:"N" ~doc:"Monte-Carlo rollouts.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Verify a scenario (built-in or DSL file) and report SC/GR rates")
    Term.(
      const run $ scenario_name_arg $ scenario_file_arg $ seed_arg
      $ controller_arg $ deadline_arg $ max_calls_arg $ cert_dir_arg
      $ rollouts_arg)

let scenario_fuzz_cmd =
  let count_arg =
    Arg.(value & opt int 200 & info [ "n"; "count" ] ~docv:"N" ~doc:"Scenarios to fuzz.")
  in
  let rollouts_arg =
    Arg.(
      value & opt int 50
      & info [ "rollouts" ] ~docv:"N" ~doc:"Oracle rollouts per scenario.")
  in
  let report_arg =
    Arg.(
      value & opt (some string) None
      & info [ "report" ] ~docv:"FILE" ~doc:"Write the JSON campaign report here.")
  in
  let corpus_arg =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Write shrunk reproducer DSL files here.")
  in
  let run seed count rollouts domains report_file corpus =
    let result =
      with_domain_pool domains (fun pool ->
          Scn_fuzz.run ~pool ~rollouts ~count ~seed ())
    in
    let tally = Hashtbl.create 8 in
    Array.iter (fun r -> bump tally r.Scn_fuzz.verdict) result.Scn_fuzz.records;
    Fmt.pr "fuzzed %d scenarios (seed %d): %a@." count seed pp_tally tally;
    let nviol = Scn_fuzz.violations result in
    (match report_file with
    | Some path ->
      let oc = open_out path in
      output_string oc (Scn_fuzz.report_json result);
      close_out oc;
      Fmt.pr "report: %s@." path
    | None -> ());
    (match corpus with
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter
        (fun rep ->
          let path =
            Filename.concat dir (Fmt.str "repro-%d.scn" rep.Scn_fuzz.rep_index)
          in
          let oc = open_out path in
          output_string oc (Fmt.str ";; %s\n%s" rep.Scn_fuzz.reason rep.Scn_fuzz.dsl);
          close_out oc;
          Fmt.pr "reproducer: %s@." path)
        result.Scn_fuzz.reproducers
    | None -> ());
    if nviol > 0 then begin
      Fmt.epr "dwv: %d soundness-oracle violation(s)@." nviol;
      List.iter
        (fun rep ->
          Fmt.epr "  [%d] %s@." rep.Scn_fuzz.rep_index rep.Scn_fuzz.reason)
        result.Scn_fuzz.reproducers;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Fuzz random scenarios through the loop with the soundness oracle")
    Term.(
      const run $ seed_arg $ count_arg $ rollouts_arg $ domains_arg
      $ report_arg $ corpus_arg)

let scenario_cmd =
  Cmd.group
    (Cmd.info "scenario"
       ~doc:"The scenario farm: list built-ins, run DSL scenarios, fuzz the loop")
    [ scenario_list_cmd; scenario_run_cmd; scenario_fuzz_cmd ]

(* Parse-and-evaluate a dynamics expression: exposes the text front end
   for user-defined systems. *)
let parse_cmd =
  let expr_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc:"Expression text.")
  in
  let at_arg =
    Arg.(
      value
      & opt (list float) []
      & info [ "at" ] ~docv:"X0,X1,..." ~doc:"State values to evaluate at.")
  in
  let u_arg =
    Arg.(
      value & opt (list float) [] & info [ "u" ] ~docv:"U0,..." ~doc:"Input values.")
  in
  let run src at u =
    match Dwv_expr.Parser.parse src with
    | Error msg ->
      Fmt.epr "parse error: %s@." msg;
      exit 2
    | Ok e ->
      Fmt.pr "ast: %a@." Dwv_expr.Expr.pp e;
      if at <> [] then
        Fmt.pr "value at x=[%a], u=[%a]: %g@."
          Fmt.(list ~sep:comma float)
          at
          Fmt.(list ~sep:comma float)
          u
          (Dwv_expr.Expr.eval e ~x:(Array.of_list at) ~u:(Array.of_list u))
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse (and optionally evaluate) a dynamics expression")
    Term.(const run $ expr_arg $ at_arg $ u_arg)

let () =
  let doc = "Design-while-verify: correct-by-construction control learning" in
  let main =
    Cmd.group (Cmd.info "dwv" ~doc)
      [ info_cmd; verify_cmd; learn_cmd; simulate_cmd; initset_cmd; cert_cmd; scenario_cmd; parse_cmd ]
  in
  exit (Cmd.eval main)
