(* dwv_lint: static soundness analyzer and lint driver.

     dwv_lint models                        Layer-1 checks on built-in systems
     dwv_lint source [PATH...]              Layer-2/3/4 lint over OCaml sources
                                            (--engine ast|regex|both|typed, default both)
     dwv_lint system -f "x1; -x0/(x1+2)" -n 2 -m 1 --x0="-1,1;-1,1"
                                            Layer-1 checks on a text-defined system
     dwv_lint all [PATH...]                 every layer (what `dune build @lint` runs)
     dwv_lint checks                        list every check the analyzer knows

   The typed engine (--engine typed) reads the .cmt files under _build
   (run `dune build @check` first) and adds the layer-4 analyses:
   budget-threading, the allocation profile (--alloc-report /
   --alloc-baseline) and the type-aware phys-equality exemption.

   JSON output is one envelope document (see Diagnostics.report_to_json);
   --format sarif emits SARIF 2.1.0; --plain renders one diagnostic per
   line without hint lines.

   Exit codes: 0 clean (warnings allowed), 1 diagnostics with Error
   severity, 2 usage/parse errors. *)

module D = Dwv_analysis.Diagnostics
module Model_check = Dwv_analysis.Model_check
module Ast_lint = Dwv_analysis.Ast_lint
module Typed_lint = Dwv_analysis.Typed_lint
module Sound_lint = Dwv_analysis.Sound_lint
module Alloc_profile = Dwv_analysis.Alloc_profile
module Registry = Dwv_analysis.Registry
module Box = Dwv_interval.Box
module Spec = Dwv_core.Spec
module Rng = Dwv_util.Rng

type format = Text | Json | Sarif

let render ~plain fmt ds =
  match fmt with
  | Json -> print_endline (D.report_to_json ds)
  | Sarif -> print_endline (D.report_to_sarif ds)
  | Text ->
    if plain then List.iter (fun d -> Fmt.pr "@[<h>%a@]@." D.pp_plain d) ds
    else List.iter (fun d -> Fmt.pr "@[<v>%a@]@." D.pp d) ds;
    Fmt.pr "%a@." D.pp_summary ds

let exit_of ds = if D.has_errors ds then 1 else 0

let usage_die msg =
  Fmt.epr "dwv_lint: %s@." msg;
  exit 2

(* ---------- built-in model inputs ---------- *)

let builtin_inputs () =
  let rng = Rng.create 7 in
  let module A = Dwv_systems.Acc in
  let module O = Dwv_systems.Oscillator in
  let module T = Dwv_systems.Threed in
  let module P = Dwv_systems.Pendulum in
  [
    Model_check.make_input ~name:"acc" ~sys:A.sampled ~spec:A.spec
      ~controller:A.initial_controller ();
    Model_check.make_input ~name:"oscillator" ~sys:O.sampled ~spec:O.spec
      ~controller:(O.initial_controller rng) ~domain:O.pretrain_region ();
    Model_check.make_input ~name:"threed" ~sys:T.sampled ~spec:T.spec
      ~controller:(T.initial_controller rng) ~domain:T.pretrain_region ();
    Model_check.make_input ~name:"pendulum" ~sys:P.sampled ~spec:P.spec
      ~controller:(P.initial_controller rng) ~domain:P.pretrain_region ();
  ]

let check_models names =
  let inputs = builtin_inputs () in
  let known = List.map (fun (i : Model_check.input) -> i.Model_check.name) inputs in
  List.iter
    (fun name ->
      if not (List.mem name known) then
        usage_die
          (Fmt.str "unknown system %S (known: %s)" name (String.concat ", " known)))
    names;
  let inputs =
    match names with
    | [] -> inputs
    | names ->
      List.filter (fun (i : Model_check.input) -> List.mem i.Model_check.name names) inputs
  in
  List.concat_map Model_check.check inputs

(* ---------- text-defined systems ---------- *)

let parse_box text =
  let component ctext =
    match String.split_on_char ',' (String.trim ctext) with
    | [ lo; hi ] -> (
      match (float_of_string_opt (String.trim lo), float_of_string_opt (String.trim hi)) with
      | Some lo, Some hi -> Ok (lo, hi)
      | _ -> Error (Fmt.str "invalid bounds %S" ctext))
    | _ -> Error (Fmt.str "expected \"lo,hi\", got %S" ctext)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> ( match component c with Ok b -> go (b :: acc) rest | Error e -> Error e)
  in
  match go [] (String.split_on_char ';' text) with
  | Error e -> Error e
  | Ok bounds -> (
    let lo = Array.of_list (List.map fst bounds) in
    let hi = Array.of_list (List.map snd bounds) in
    match Box.make ~lo ~hi with
    | box -> Ok box
    | exception Invalid_argument m -> Error m)

let split_exprs text =
  String.split_on_char ';' text |> List.map String.trim
  |> List.filter (fun s -> s <> "")

(* ---------- cmdliner plumbing ---------- *)

open Cmdliner

let format_conv =
  Arg.conv
    ( (function
      | "text" -> Ok Text
      | "json" -> Ok Json
      | "sarif" -> Ok Sarif
      | s -> Error (`Msg ("unknown format " ^ s ^ " (expected text | json | sarif)"))),
      fun ppf f ->
        Fmt.string ppf (match f with Text -> "text" | Json -> "json" | Sarif -> "sarif") )

let format_arg =
  Arg.(value & opt format_conv Text
       & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text, json or sarif (2.1.0).")

let plain_arg =
  Arg.(value & flag
       & info [ "plain" ]
           ~doc:"With text output, print one diagnostic per line and omit hint lines.")

type engine_choice = Src of Ast_lint.engine | Typed | Sound

let engine_conv =
  Arg.conv
    ( (fun s ->
        if s = "typed" then Ok Typed
        else if s = "sound" then Ok Sound
        else
          match Ast_lint.engine_of_string s with
          | Some e -> Ok (Src e)
          | None ->
            Error
              (`Msg
                ("unknown engine " ^ s ^ " (expected ast | regex | both | typed | sound)"))),
      fun ppf e ->
        Fmt.string ppf
          (match e with
          | Src e -> Ast_lint.engine_label e
          | Typed -> "typed"
          | Sound -> "sound") )

let engine_arg =
  Arg.(value & opt engine_conv (Src Ast_lint.Both)
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Source engine: ast (Parsetree analyses), regex (layer-2 patterns), \
                 both (ast plus a differential regex shadow run), typed (both plus \
                 the layer-4 cmt analyses: budget-threading, allocation profile, \
                 type-aware phys-equality exemption), or sound (only the layer-5 \
                 semantic soundness analyses: rounding-flow, cache-purity).")

let build_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "build-dir" ] ~docv:"DIR"
           ~doc:"Where the typed engine looks for .cmt files (default: _build/default \
                 when it exists, else the current directory).")

let alloc_report_arg =
  Arg.(value & opt (some string) None
       & info [ "alloc-report" ] ~docv:"FILE"
           ~doc:"With --engine typed, write the ranked allocation profile to this \
                 file (ALLOC_report.json format, deterministic).")

let alloc_baseline_arg =
  Arg.(value & opt (some string) None
       & info [ "alloc-baseline" ] ~docv:"FILE"
           ~doc:"With --engine typed, fail on allocation sites not covered by this \
                 committed baseline (a previous --alloc-report document).")

let exclude_arg =
  Arg.(value & opt_all string []
       & info [ "exclude" ] ~docv:"FRAG"
           ~doc:"Skip paths containing this fragment (whole path components; \
                 repeatable). The lint fixture corpus is excluded this way in CI.")

let models_cmd =
  let names_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"SYSTEM" ~doc:"Systems to check (default: all).")
  in
  let run fmt plain names =
    let ds = check_models names in
    render ~plain fmt ds;
    exit (exit_of ds)
  in
  Cmd.v (Cmd.info "models" ~doc:"Layer-1 static analysis of the built-in systems")
    Term.(const run $ format_arg $ plain_arg $ names_arg)

let default_source_roots = [ "lib"; "bin"; "bench"; "test"; "examples" ]

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> contents
  | exception Sys_error m -> usage_die m

let write_file path contents =
  match Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)
  with
  | () -> ()
  | exception Sys_error m -> usage_die m

let lint_sources ~engine ~exclude ?build_dir ?alloc_report ?alloc_baseline paths =
  let roots =
    match paths with
    | [] -> List.filter Sys.file_exists default_source_roots
    | paths -> paths
  in
  match engine with
  | Src engine -> (
    match Ast_lint.lint_tree ~exclude ~engine roots with
    | ds -> ds
    | exception Invalid_argument m -> usage_die m)
  | Typed -> (
    let alloc_baseline = Option.map read_file alloc_baseline in
    match Typed_lint.lint_tree ?build_dir ~exclude ?alloc_baseline ~roots () with
    | r ->
      Option.iter
        (fun file -> write_file file (Alloc_profile.report_to_json r.Typed_lint.sites))
        alloc_report;
      r.Typed_lint.diags
    | exception Invalid_argument m -> usage_die m)
  | Sound -> (
    match Sound_lint.lint_tree ?build_dir ~exclude ~roots () with
    | ds -> ds
    | exception Invalid_argument m -> usage_die m)

let source_cmd =
  let paths_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"PATH"
         ~doc:"Files or directories to lint (default: lib bin bench test examples).")
  in
  let run fmt plain engine exclude build_dir alloc_report alloc_baseline paths =
    let ds =
      lint_sources ~engine ~exclude ?build_dir ?alloc_report ?alloc_baseline paths
    in
    render ~plain fmt ds;
    exit (exit_of ds)
  in
  Cmd.v
    (Cmd.info "source"
       ~doc:"Source lint: layer-2 rules plus the layer-3 AST analyses (domain-safety, \
             exn-escape) and, with --engine typed, the layer-4 cmt analyses")
    Term.(const run $ format_arg $ plain_arg $ engine_arg $ exclude_arg $ build_dir_arg
          $ alloc_report_arg $ alloc_baseline_arg $ paths_arg)

let system_cmd =
  let f_arg =
    Arg.(required & opt (some string) None
         & info [ "f"; "dynamics" ] ~docv:"EXPRS"
             ~doc:"Dynamics, one expression per component, ';'-separated. Use \
                   --dynamics=\"...\" when the first expression starts with '-'.")
  in
  let n_arg = Arg.(required & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"State dimension.") in
  let m_arg = Arg.(required & opt (some int) None & info [ "m" ] ~docv:"M" ~doc:"Input dimension.") in
  let x0_arg =
    Arg.(required & opt (some string) None
         & info [ "x0" ] ~docv:"BOX" ~doc:"Initial box, \"lo,hi\" per dimension, ';'-separated.")
  in
  let u_arg =
    Arg.(value & opt (some string) None
         & info [ "u"; "input" ] ~docv:"BOX"
             ~doc:"Input box (same syntax as --x0). Use --input=\"...\" for \
                   negative lower bounds.")
  in
  let run fmt f_text n m x0_text u_text =
    let f =
      match Dwv_expr.Parser.parse_system (split_exprs f_text) with
      | Ok f -> f
      | Error msg -> usage_die ("dynamics: " ^ msg)
    in
    let x0 = match parse_box x0_text with Ok b -> b | Error e -> usage_die ("--x0: " ^ e) in
    if Array.length x0 <> n then
      usage_die
        (Fmt.str "--x0 has %d component(s) but the state dimension is %d"
           (Array.length x0) n);
    let u =
      match u_text with
      | None -> None
      | Some t -> ( match parse_box t with Ok b -> Some b | Error e -> usage_die ("--u: " ^ e))
    in
    (match u with
    | Some u when Array.length u <> m ->
      usage_die
        (Fmt.str "--u has %d component(s) but the input dimension is %d" (Array.length u) m)
    | _ -> ());
    let name = "user" in
    let ds =
      Model_check.check_dynamics ~name ~f ~n ~m
      @ Model_check.check_domains ~name ~f ~x0 ?u ()
    in
    let ds = D.sort ds in
    render ~plain:false fmt ds;
    exit (exit_of ds)
  in
  Cmd.v
    (Cmd.info "system"
       ~doc:"Layer-1 static analysis of a system given as dynamics text (the same front \
             end user-defined systems go through)")
    Term.(const run $ format_arg $ f_arg $ n_arg $ m_arg $ x0_arg $ u_arg)

let checks_cmd =
  let run () =
    List.iter
      (fun (e : Registry.entry) ->
        Fmt.pr "%-16s %-7s %s@." e.Registry.name
          (Registry.layer_label e.Registry.layer)
          e.Registry.description)
      Registry.all;
    Fmt.pr "%d checks@." (List.length Registry.all)
  in
  Cmd.v (Cmd.info "checks" ~doc:"List every check the analyzer can emit")
    Term.(const run $ const ())

let all_cmd =
  let paths_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"PATH"
         ~doc:"Source roots for the source layers (default: lib bin bench test examples).")
  in
  let run fmt plain engine exclude build_dir alloc_report alloc_baseline paths =
    let ds =
      check_models []
      @ lint_sources ~engine ~exclude ?build_dir ?alloc_report ?alloc_baseline paths
    in
    render ~plain fmt ds;
    exit (exit_of ds)
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every analysis layer (what `dune build @lint` runs)")
    Term.(const run $ format_arg $ plain_arg $ engine_arg $ exclude_arg $ build_dir_arg
          $ alloc_report_arg $ alloc_baseline_arg $ paths_arg)

let () =
  let doc = "Static soundness analyzer for design-while-verify models and sources" in
  let main =
    Cmd.group (Cmd.info "dwv_lint" ~doc)
      [ models_cmd; source_cmd; system_cmd; checks_cmd; all_cmd ]
  in
  exit (Cmd.eval main)
